//! On-disk spill format for evicted masks.
//!
//! Hand-rolled binary layout, little-endian throughout:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"ILTMASK1"
//! 8       8     key digest (sanity check against filename collisions)
//! 16      8     version
//! 24      8     width
//! 32      8     height
//! 40      8wh   pixels, row-major f64 bit patterns
//! 40+8wh  8     FNV-1a checksum of bytes [0, 40+8wh)
//! ```
//!
//! Writes go through a temp file + rename so a crash mid-spill never leaves a
//! truncated file under the final name; reads verify magic, digest,
//! dimensions, and checksum and refuse anything that does not line up.

use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use ilt_grid::RealGrid;

use crate::key::Fingerprint;

const MAGIC: &[u8; 8] = b"ILTMASK1";
const HEADER_LEN: usize = 40;
/// Refuse to load absurd dimensions before allocating (64M pixels = 512 MiB).
const MAX_PIXELS: u64 = 64 * 1024 * 1024;

#[derive(Debug)]
pub enum DiskError {
    Io(io::Error),
    BadMagic,
    DigestMismatch { expected: u64, found: u64 },
    BadDimensions { width: u64, height: u64 },
    Truncated { expected: usize, found: usize },
    ChecksumMismatch { expected: u64, found: u64 },
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::Io(err) => write!(f, "spill io error: {err}"),
            DiskError::BadMagic => write!(f, "spill file has wrong magic"),
            DiskError::DigestMismatch { expected, found } => write!(
                f,
                "spill file key digest mismatch: expected {expected:#x}, found {found:#x}"
            ),
            DiskError::BadDimensions { width, height } => {
                write!(f, "spill file dimensions out of range: {width}x{height}")
            }
            DiskError::Truncated { expected, found } => {
                write!(
                    f,
                    "spill file truncated: expected {expected} bytes, found {found}"
                )
            }
            DiskError::ChecksumMismatch { expected, found } => write!(
                f,
                "spill file checksum mismatch: expected {expected:#x}, found {found:#x}"
            ),
        }
    }
}

impl std::error::Error for DiskError {}

impl From<io::Error> for DiskError {
    fn from(err: io::Error) -> Self {
        DiskError::Io(err)
    }
}

/// Path of the spill file for a key digest inside `dir`.
pub fn spill_path(dir: &Path, digest: u64) -> PathBuf {
    dir.join(format!("{digest:016x}.iltmask"))
}

/// Serialize a mask with its version and key digest.
pub fn encode(digest: u64, version: u64, mask: &RealGrid) -> Vec<u8> {
    let pixels = mask.len();
    let mut buf = Vec::with_capacity(HEADER_LEN + pixels * 8 + 8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&digest.to_le_bytes());
    buf.extend_from_slice(&version.to_le_bytes());
    buf.extend_from_slice(&(mask.width() as u64).to_le_bytes());
    buf.extend_from_slice(&(mask.height() as u64).to_le_bytes());
    for value in mask.as_slice() {
        buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }
    let mut fp = Fingerprint::new();
    fp.write_bytes(&buf);
    buf.extend_from_slice(&fp.finish().to_le_bytes());
    buf
}

/// Parse a spill buffer, verifying magic, digest, dimensions, and checksum.
pub fn decode(bytes: &[u8], digest: u64) -> Result<(u64, RealGrid), DiskError> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(DiskError::Truncated {
            expected: HEADER_LEN + 8,
            found: bytes.len(),
        });
    }
    if &bytes[0..8] != MAGIC {
        return Err(DiskError::BadMagic);
    }
    let read_u64 = |offset: usize| {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&bytes[offset..offset + 8]);
        u64::from_le_bytes(raw)
    };
    let found_digest = read_u64(8);
    if found_digest != digest {
        return Err(DiskError::DigestMismatch {
            expected: digest,
            found: found_digest,
        });
    }
    let version = read_u64(16);
    let width = read_u64(24);
    let height = read_u64(32);
    if width == 0 || height == 0 || width.saturating_mul(height) > MAX_PIXELS {
        return Err(DiskError::BadDimensions { width, height });
    }
    let pixels = (width * height) as usize;
    let expected_len = HEADER_LEN + pixels * 8 + 8;
    if bytes.len() != expected_len {
        return Err(DiskError::Truncated {
            expected: expected_len,
            found: bytes.len(),
        });
    }
    let body_end = expected_len - 8;
    let mut fp = Fingerprint::new();
    fp.write_bytes(&bytes[..body_end]);
    let expected_sum = fp.finish();
    let found_sum = read_u64(body_end);
    if expected_sum != found_sum {
        return Err(DiskError::ChecksumMismatch {
            expected: expected_sum,
            found: found_sum,
        });
    }
    let mut data = Vec::with_capacity(pixels);
    for i in 0..pixels {
        data.push(f64::from_bits(read_u64(HEADER_LEN + i * 8)));
    }
    Ok((
        version,
        RealGrid::from_vec(width as usize, height as usize, data),
    ))
}

/// Atomically write a spill file for `digest` under `dir`.
pub fn write_spill(
    dir: &Path,
    digest: u64,
    version: u64,
    mask: &RealGrid,
) -> Result<(), DiskError> {
    fs::create_dir_all(dir)?;
    let bytes = encode(digest, version, mask);
    let tmp = dir.join(format!("{digest:016x}.tmp"));
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, spill_path(dir, digest))?;
    Ok(())
}

/// Load and verify the spill file for `digest`, if present.
pub fn read_spill(dir: &Path, digest: u64) -> Result<Option<(u64, RealGrid)>, DiskError> {
    let path = spill_path(dir, digest);
    let mut file = match fs::File::open(&path) {
        Ok(file) => file,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(err) => return Err(err.into()),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    decode(&bytes, digest).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mask() -> RealGrid {
        RealGrid::from_fn(5, 3, |x, y| (x as f64) * 0.25 + (y as f64) * 0.125)
    }

    #[test]
    fn encode_decode_round_trip_nonsquare() {
        let mask = sample_mask();
        let bytes = encode(0xdead_beef, 7, &mask);
        let (version, loaded) = decode(&bytes, 0xdead_beef).unwrap();
        assert_eq!(version, 7);
        assert_eq!(loaded.width(), 5);
        assert_eq!(loaded.height(), 3);
        assert_eq!(loaded.as_slice(), mask.as_slice());
    }

    #[test]
    fn decode_rejects_flipped_bit() {
        let mask = sample_mask();
        let mut bytes = encode(1, 1, &mask);
        let mid = HEADER_LEN + 9;
        bytes[mid] ^= 0x40;
        match decode(&bytes, 1) {
            Err(DiskError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_wrong_digest_and_truncation() {
        let mask = sample_mask();
        let bytes = encode(2, 1, &mask);
        assert!(matches!(
            decode(&bytes, 3),
            Err(DiskError::DigestMismatch { .. })
        ));
        assert!(matches!(
            decode(&bytes[..bytes.len() - 4], 2),
            Err(DiskError::Truncated { .. })
        ));
        let mut garbage = bytes.clone();
        garbage[0] = b'X';
        assert!(matches!(decode(&garbage, 2), Err(DiskError::BadMagic)));
    }
}

//! Cache keys for stored tile masks.
//!
//! A mask is only reusable when three things line up: the tile sees the same
//! target geometry ([`tile_content_hash`]), the litho model and solver
//! schedule are unchanged (the config fingerprint), and the mask was produced
//! by the same solver method. [`StoreKey`] carries all three. Hashing the
//! *content* of the tile (not just its coordinates) is what makes incremental
//! re-ILT fall out for free: after a layout edit, untouched tiles hash to the
//! same key and hit the store, while edited tiles miss and are re-solved.

use ilt_grid::{BitGrid, Rect};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher.
///
/// Deliberately not `std::hash::Hasher`: the default `Hasher` impls are not
/// guaranteed stable across rust versions, and these digests name files under
/// `ILT_STORE_DIR` that outlive the process.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    pub fn write_u64(&mut self, value: u64) -> &mut Self {
        self.write_bytes(&value.to_le_bytes())
    }

    pub fn write_i64(&mut self, value: i64) -> &mut Self {
        self.write_bytes(&value.to_le_bytes())
    }

    pub fn write_f64(&mut self, value: f64) -> &mut Self {
        self.write_bytes(&value.to_bits().to_le_bytes())
    }

    pub fn write_str(&mut self, value: &str) -> &mut Self {
        // Length prefix keeps ("ab","c") distinct from ("a","bc").
        self.write_u64(value.len() as u64);
        self.write_bytes(value.as_bytes())
    }

    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Hash of one tile's slice of the target layout: the tile rect (position and
/// extent) plus every target pixel inside it. Two tiles collide only when
/// they cover the same region of an identical layout.
pub fn tile_content_hash(target: &BitGrid, rect: Rect) -> u64 {
    let mut fp = Fingerprint::new();
    fp.write_i64(rect.x0)
        .write_i64(rect.y0)
        .write_i64(rect.x1)
        .write_i64(rect.y1)
        .write_u64(target.width() as u64)
        .write_u64(target.height() as u64);
    let clipped = rect
        .intersect(target.bounds())
        .unwrap_or(Rect::new(0, 0, 0, 0));
    for y in clipped.y0..clipped.y1 {
        for x in clipped.x0..clipped.x1 {
            fp.write_bytes(&[target.get(x as usize, y as usize)]);
        }
    }
    fp.finish()
}

/// Identity of a stored mask: `(tile geometry hash, litho-config fingerprint,
/// solver method)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// [`tile_content_hash`] of the tile over the target layout.
    pub geometry: u64,
    /// Fingerprint of the full experiment config (optics, resist, partition,
    /// schedule) — any model change invalidates every stored mask.
    pub config: u64,
    /// Solver method that produced the mask, e.g. `"ours:pixel"`.
    pub method: &'static str,
}

impl StoreKey {
    pub fn new(geometry: u64, config: u64, method: &'static str) -> Self {
        Self {
            geometry,
            config,
            method,
        }
    }

    /// Single stable digest of all three components; names spill files.
    pub fn digest(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.geometry)
            .write_u64(self.config)
            .write_str(self.method);
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_sensitive() {
        let mut a = Fingerprint::new();
        a.write_u64(1).write_u64(2);
        let mut b = Fingerprint::new();
        b.write_u64(2).write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fingerprint_str_length_prefix_disambiguates() {
        let mut a = Fingerprint::new();
        a.write_str("ab").write_str("c");
        let mut b = Fingerprint::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn content_hash_stable_for_identical_nonsquare_layouts() {
        // M×N geometry: a 96×48 layout carved into 64-wide, 32-tall rects.
        let make = || BitGrid::from_fn(96, 48, |x, y| u8::from((x / 7 + y / 5) % 2 == 0));
        let a = make();
        let b = make();
        for rect in [
            Rect::new(0, 0, 64, 32),
            Rect::new(32, 16, 96, 48),
            Rect::new(32, 0, 96, 32),
        ] {
            assert_eq!(tile_content_hash(&a, rect), tile_content_hash(&b, rect));
        }
    }

    #[test]
    fn content_hash_sees_single_pixel_change() {
        let a = BitGrid::new(64, 32, 0);
        let mut b = a.clone();
        b.set(10, 10, 1);
        let rect = Rect::new(0, 0, 64, 32);
        assert_ne!(tile_content_hash(&a, rect), tile_content_hash(&b, rect));
        // ... but a change outside the rect is invisible to it.
        let far = Rect::new(32, 0, 64, 32);
        assert_eq!(tile_content_hash(&a, far), tile_content_hash(&b, far));
    }

    #[test]
    fn content_hash_distinguishes_rect_position() {
        // Uniform layout: pixel content identical everywhere, so only the
        // rect coordinates can tell two tiles apart.
        let g = BitGrid::new(96, 96, 1);
        let a = tile_content_hash(&g, Rect::new(0, 0, 32, 32));
        let b = tile_content_hash(&g, Rect::new(32, 0, 64, 32));
        assert_ne!(a, b);
    }

    #[test]
    fn store_key_digest_covers_every_component() {
        let base = StoreKey::new(1, 2, "ours:pixel");
        assert_ne!(base.digest(), StoreKey::new(3, 2, "ours:pixel").digest());
        assert_ne!(base.digest(), StoreKey::new(1, 3, "ours:pixel").digest());
        assert_ne!(
            base.digest(),
            StoreKey::new(1, 2, "ours:level-set").digest()
        );
    }
}

//! The mask store proper: an in-memory LRU with a byte budget, versioned
//! entries, and optional spill-to-disk on eviction.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use ilt_grid::{RealGrid, Rect};
use ilt_telemetry as tele;

use crate::disk;
use crate::key::StoreKey;

/// Default in-memory budget when `ILT_STORE_BUDGET_MB` is unset.
const DEFAULT_BUDGET_MB: u64 = 64;

fn mask_bytes(mask: &RealGrid) -> u64 {
    (mask.len() * std::mem::size_of::<f64>()) as u64
}

struct Entry {
    mask: RealGrid,
    version: u64,
    bytes: u64,
    /// Recency tick; larger = more recently touched.
    touched: u64,
}

/// Cumulative activity counters, mirrored into the telemetry registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    pub hits: u64,
    pub misses: u64,
    pub puts: u64,
    pub evictions: u64,
    pub spills: u64,
    pub disk_hits: u64,
    pub bytes: u64,
    pub entries: u64,
}

impl StoreStats {
    /// Fraction of lookups served (memory or disk); 0 when nothing was asked.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One row of the `/debug/store` entry listing.
#[derive(Debug, Clone)]
pub struct EntryView {
    pub digest: u64,
    pub geometry: u64,
    pub config: u64,
    pub method: &'static str,
    pub bytes: u64,
    pub version: u64,
}

struct Inner {
    entries: HashMap<StoreKey, Entry>,
    bytes: u64,
    clock: u64,
    stats: StoreStats,
}

/// Persistent, versioned mask store.
///
/// Lookup order is memory, then (if configured) disk. Evictions under byte
/// pressure pick the least-recently-touched entry; with a spill directory
/// configured the evicted mask is written out first, so it remains
/// retrievable — "persistent" means the budget bounds memory, not knowledge.
pub struct MaskStore {
    inner: Mutex<Inner>,
    budget: u64,
    dir: Option<PathBuf>,
    /// Global singleton publishes gauges/counters; ad-hoc test stores do not,
    /// so tests never fight over process-wide metric state.
    telemetry: bool,
}

impl MaskStore {
    pub fn new(budget_bytes: u64, dir: Option<PathBuf>) -> Self {
        Self {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                bytes: 0,
                clock: 0,
                stats: StoreStats::default(),
            }),
            budget: budget_bytes.max(1),
            dir,
            telemetry: false,
        }
    }

    /// Store configured from the environment: `ILT_STORE_BUDGET_MB` (default
    /// 64) and `ILT_STORE_DIR` (spill disabled when unset). `ILT_STORE=0`
    /// turns the store off entirely — every lookup misses, puts are dropped.
    fn from_env() -> Self {
        let budget_mb = std::env::var("ILT_STORE_BUDGET_MB")
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .filter(|&mb| mb > 0)
            .unwrap_or(DEFAULT_BUDGET_MB);
        let dir = std::env::var("ILT_STORE_DIR")
            .ok()
            .filter(|raw| !raw.trim().is_empty())
            .map(PathBuf::from);
        let mut store = Self::new(budget_mb * 1024 * 1024, dir);
        store.telemetry = true;
        store
    }

    pub fn enabled() -> bool {
        !matches!(
            std::env::var("ILT_STORE").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    }

    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    pub fn spill_dir(&self) -> Option<&PathBuf> {
        self.dir.as_ref()
    }

    /// Look up a mask. Falls back to the spill directory on a memory miss;
    /// a verified disk hit is re-admitted to memory.
    pub fn get(&self, key: &StoreKey) -> Option<RealGrid> {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let tick = inner.clock;
        if let Some(entry) = inner.entries.get_mut(key) {
            entry.touched = tick;
            let mask = entry.mask.clone();
            inner.stats.hits += 1;
            self.count("store.hits", 1);
            self.publish(&inner);
            return Some(mask);
        }
        if let Some(dir) = &self.dir {
            if let Ok(Some((version, mask))) = disk::read_spill(dir, key.digest()) {
                inner.stats.hits += 1;
                inner.stats.disk_hits += 1;
                self.count("store.hits", 1);
                self.count("store.disk_hits", 1);
                let bytes = mask_bytes(&mask);
                inner.entries.insert(
                    *key,
                    Entry {
                        mask: mask.clone(),
                        version,
                        bytes,
                        touched: tick,
                    },
                );
                inner.bytes += bytes;
                self.evict_over_budget(&mut inner, Some(*key));
                self.publish(&inner);
                return Some(mask);
            }
        }
        inner.stats.misses += 1;
        self.count("store.misses", 1);
        self.publish(&inner);
        None
    }

    /// Insert or overwrite a mask. Overwrites bump the entry version.
    pub fn put(&self, key: StoreKey, mask: RealGrid) -> u64 {
        let bytes = mask_bytes(&mask);
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let tick = inner.clock;
        inner.stats.puts += 1;
        self.count("store.puts", 1);
        let version = match inner.entries.remove(&key) {
            Some(old) => {
                inner.bytes -= old.bytes;
                old.version + 1
            }
            None => 1,
        };
        inner.entries.insert(
            key,
            Entry {
                mask,
                version,
                bytes,
                touched: tick,
            },
        );
        inner.bytes += bytes;
        self.evict_over_budget(&mut inner, Some(key));
        self.publish(&inner);
        version
    }

    /// Insert a tile's crop of a full layout: crops `rect` out of `layout`
    /// and stores it under `key`. The streaming flows store tiles straight
    /// from the assembled layout, so only the single tile-sized crop is ever
    /// materialised — never a second full-layout copy.
    ///
    /// # Panics
    ///
    /// Panics if `rect` escapes `layout` (same contract as
    /// [`Grid::crop`](ilt_grid::Grid::crop)).
    pub fn put_crop(&self, key: StoreKey, layout: &RealGrid, rect: Rect) -> u64 {
        self.put(key, layout.crop(rect))
    }

    /// Evict least-recently-touched entries until the budget holds. `keep`
    /// protects the entry just inserted so a single oversized mask is still
    /// usable for the current job (it goes when the next entry arrives).
    fn evict_over_budget(&self, inner: &mut Inner, keep: Option<StoreKey>) {
        while inner.bytes > self.budget && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .filter(|(key, _)| Some(**key) != keep)
                .min_by_key(|(_, entry)| entry.touched)
                .map(|(key, _)| *key);
            let Some(victim) = victim else { break };
            let entry = inner.entries.remove(&victim).expect("victim present");
            inner.bytes -= entry.bytes;
            inner.stats.evictions += 1;
            self.count("store.evictions", 1);
            if let Some(dir) = &self.dir {
                if disk::write_spill(dir, victim.digest(), entry.version, &entry.mask).is_ok() {
                    inner.stats.spills += 1;
                    self.count("store.spills", 1);
                }
            }
        }
    }

    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().unwrap();
        let mut stats = inner.stats;
        stats.bytes = inner.bytes;
        stats.entries = inner.entries.len() as u64;
        stats
    }

    /// Resident entries, most recently touched first, capped at `limit`.
    pub fn entries(&self, limit: usize) -> Vec<EntryView> {
        let inner = self.inner.lock().unwrap();
        let mut rows: Vec<(u64, EntryView)> = inner
            .entries
            .iter()
            .map(|(key, entry)| {
                (
                    entry.touched,
                    EntryView {
                        digest: key.digest(),
                        geometry: key.geometry,
                        config: key.config,
                        method: key.method,
                        bytes: entry.bytes,
                        version: entry.version,
                    },
                )
            })
            .collect();
        rows.sort_by_key(|(touched, _)| std::cmp::Reverse(*touched));
        rows.into_iter().take(limit).map(|(_, view)| view).collect()
    }

    /// Mirror the current occupancy into the telemetry gauges, where
    /// `/metrics` exposes them as `ilt_store_bytes` / `ilt_store_entries`.
    /// Only the shared singleton publishes; ad-hoc test stores stay silent.
    fn publish(&self, inner: &Inner) {
        if !self.telemetry {
            return;
        }
        tele::gauge_set("store.bytes", inner.bytes as f64);
        tele::gauge_set("store.entries", inner.entries.len() as f64);
    }

    /// Bump a telemetry counter (`ilt_store_hits_total`, ... on `/metrics`),
    /// again only from the shared singleton.
    fn count(&self, name: &'static str, delta: u64) {
        if self.telemetry {
            tele::counter_add(name, delta);
        }
    }
}

/// Process-wide shared store, configured once from the environment.
pub fn shared_store() -> &'static MaskStore {
    static STORE: OnceLock<MaskStore> = OnceLock::new();
    STORE.get_or_init(MaskStore::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_grid::Grid;

    fn mask(w: usize, h: usize, seed: f64) -> RealGrid {
        Grid::from_fn(w, h, |x, y| seed + x as f64 + 10.0 * y as f64)
    }

    fn key(geometry: u64) -> StoreKey {
        StoreKey::new(geometry, 42, "ours:pixel")
    }

    #[test]
    fn put_crop_stores_exactly_the_tile_slice() {
        let store = MaskStore::new(1 << 20, None);
        let layout = mask(32, 32, 0.25);
        let rect = Rect::new(8, 4, 24, 20);
        store.put_crop(key(7), &layout, rect);
        let got = store.get(&key(7)).expect("hit");
        assert_eq!((got.width(), got.height()), (16, 16));
        assert_eq!(got.as_slice(), layout.crop(rect).as_slice());
        // Only the crop's bytes are accounted, not the full layout's.
        assert_eq!(store.stats().bytes, 16 * 16 * 8);
    }

    #[test]
    fn get_after_put_round_trips() {
        let store = MaskStore::new(1 << 20, None);
        let m = mask(8, 4, 0.5);
        store.put(key(1), m.clone());
        let got = store.get(&key(1)).expect("hit");
        assert_eq!(got.as_slice(), m.as_slice());
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, 8 * 4 * 8);
    }

    #[test]
    fn miss_on_unknown_key_and_hit_ratio() {
        let store = MaskStore::new(1 << 20, None);
        assert!(store.get(&key(9)).is_none());
        store.put(key(9), mask(4, 4, 0.0));
        assert!(store.get(&key(9)).is_some());
        let stats = store.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overwrite_bumps_version() {
        let store = MaskStore::new(1 << 20, None);
        assert_eq!(store.put(key(3), mask(4, 4, 0.0)), 1);
        assert_eq!(store.put(key(3), mask(4, 4, 1.0)), 2);
        assert_eq!(store.stats().entries, 1);
        let got = store.get(&key(3)).unwrap();
        assert!((got.get(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        // Budget fits exactly two 4×4 masks (128 bytes each).
        let store = MaskStore::new(256, None);
        store.put(key(1), mask(4, 4, 1.0));
        store.put(key(2), mask(4, 4, 2.0));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(store.get(&key(1)).is_some());
        store.put(key(3), mask(4, 4, 3.0));
        let stats = store.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(store.stats().bytes <= 256);
        assert!(store.get(&key(2)).is_none(), "LRU entry should be gone");
        assert!(store.get(&key(1)).is_some());
        assert!(store.get(&key(3)).is_some());
    }

    #[test]
    fn eviction_spills_to_disk_and_get_reloads() {
        let dir = std::env::temp_dir().join(format!("ilt-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = MaskStore::new(256, Some(dir.clone()));
        store.put(key(1), mask(4, 4, 1.0));
        store.put(key(2), mask(4, 4, 2.0));
        store.put(key(3), mask(4, 4, 3.0)); // evicts + spills key(1)
        let stats = store.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.spills, 1);
        let reloaded = store.get(&key(1)).expect("disk hit");
        assert!((reloaded.get(0, 0) - 1.0).abs() < 1e-12);
        assert_eq!(store.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_spill_file_is_a_miss() {
        let dir = std::env::temp_dir().join(format!("ilt-store-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = MaskStore::new(256, Some(dir.clone()));
        store.put(key(1), mask(4, 4, 1.0));
        store.put(key(2), mask(4, 4, 2.0));
        store.put(key(3), mask(4, 4, 3.0)); // spills key(1)
        let path = disk::spill_path(&dir, key(1).digest());
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.get(&key(1)).is_none(), "corrupt spill must not load");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_view_lists_most_recent_first() {
        let store = MaskStore::new(1 << 20, None);
        store.put(key(1), mask(4, 4, 1.0));
        store.put(key(2), mask(4, 4, 2.0));
        assert!(store.get(&key(1)).is_some());
        let rows = store.entries(10);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].geometry, 1, "touched last, listed first");
        assert_eq!(rows[0].method, "ours:pixel");
        assert_eq!(rows[0].bytes, 128);
    }
}

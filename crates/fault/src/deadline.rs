//! Ambient per-thread deadlines.
//!
//! A job deadline set at the serve layer must be visible inside the solver's
//! innermost iteration loop, several crates below, without threading an
//! `Option<Instant>` through every signature. This module keeps the current
//! deadline in a thread-local that callers set with an RAII [`scope`]; the
//! tile executor re-applies the submitting thread's deadline on its worker
//! threads (the same pattern telemetry uses for span parents and for the
//! per-job trace ids of `ilt_telemetry::trace_scope` — the three ambient
//! contexts are captured and re-applied together), so tile jobs observe
//! the job deadline no matter which thread runs them.
//!
//! Checks are cheap (`Instant::now()` against a `Cell`), so solver loops can
//! afford one per iteration.

use std::cell::Cell;
use std::time::{Duration, Instant};

thread_local! {
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Restores the previous deadline when dropped.
#[derive(Debug)]
pub struct DeadlineScope {
    previous: Option<Instant>,
}

impl Drop for DeadlineScope {
    fn drop(&mut self) {
        DEADLINE.with(|cell| cell.set(self.previous));
    }
}

/// Sets the current thread's deadline (or clears it with `None`) until the
/// returned guard drops. Scopes nest; the innermost wins.
#[must_use = "the deadline is cleared when the scope guard drops"]
pub fn scope(deadline: Option<Instant>) -> DeadlineScope {
    let previous = DEADLINE.with(|cell| cell.replace(deadline));
    DeadlineScope { previous }
}

/// The deadline currently in scope on this thread, if any.
#[inline]
pub fn current() -> Option<Instant> {
    DEADLINE.with(Cell::get)
}

/// Whether the current deadline (if any) has passed.
#[inline]
pub fn exceeded() -> bool {
    match current() {
        Some(deadline) => Instant::now() >= deadline,
        None => false,
    }
}

/// Time left before the current deadline: `None` when no deadline is in
/// scope, `Some(ZERO)` once it has passed.
pub fn remaining() -> Option<Duration> {
    current().map(|deadline| deadline.saturating_duration_since(Instant::now()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_deadline_by_default() {
        assert_eq!(current(), None);
        assert!(!exceeded());
        assert_eq!(remaining(), None);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let far = Instant::now() + Duration::from_secs(60);
        let near = Instant::now() + Duration::from_secs(1);
        {
            let _outer = scope(Some(far));
            assert_eq!(current(), Some(far));
            {
                let _inner = scope(Some(near));
                assert_eq!(current(), Some(near));
                {
                    let _cleared = scope(None);
                    assert_eq!(current(), None);
                }
                assert_eq!(current(), Some(near));
            }
            assert_eq!(current(), Some(far));
            assert!(!exceeded());
            assert!(remaining().unwrap() > Duration::from_secs(30));
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn expired_deadline_is_exceeded() {
        let past = Instant::now() - Duration::from_millis(1);
        let _g = scope(Some(past));
        assert!(exceeded());
        assert_eq!(remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn deadlines_are_thread_local() {
        let soon = Instant::now() + Duration::from_secs(5);
        let _g = scope(Some(soon));
        std::thread::spawn(|| {
            assert_eq!(current(), None);
        })
        .join()
        .unwrap();
        assert_eq!(current(), Some(soon));
    }
}

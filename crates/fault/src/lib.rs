//! Deterministic fault injection for the multigrid-Schwarz ILT stack.
//!
//! Production code sprinkles named *injection points* (see [`points`]) at the
//! places where real systems fail: tile solves, request parsing, queue
//! admission, file IO. Each point is a single [`should_fire`] call that is a
//! relaxed atomic load when no faults are configured, so shipping the hooks
//! costs nothing.
//!
//! Faults are armed through the `ILT_FAULTS` environment variable (mirroring
//! the `ILT_TRACE` convention) or programmatically via [`configure`]. The
//! grammar is a comma-separated list of specs:
//!
//! ```text
//! ILT_FAULTS=point:rate:seed[:limit[:skip]],...
//!
//! point  registered injection point name, e.g. tile.panic
//! rate   firing probability in [0, 1]
//! seed   u64 seed; decisions are a pure function of (seed, invocation #)
//! limit  optional maximum number of fires (omit or 0 = unlimited)
//! skip   optional number of leading invocations that never fire
//! ```
//!
//! `tile.panic:1.0:42:2:1` reads "after letting the first invocation pass,
//! fire on every invocation until two fires have happened" — exactly the
//! shape needed to fail one fine-stage tile (both retry attempts) while
//! leaving the coarse stage untouched.
//!
//! Decisions are deterministic: each point keeps an invocation counter and
//! hashes `(seed, invocation)` through a splitmix64 finalizer, so a fixed
//! seed and a fixed execution order (e.g. the default sequential executor)
//! reproduce the same fault pattern run after run.
//!
//! The crate also hosts the ambient [`deadline`] scope used to enforce job
//! deadlines *inside* solver iteration loops; it lives here (rather than in
//! `ilt-serve`) so leaf crates can check it without depending on the server.

pub mod deadline;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once};

/// Registered injection point names. Keeping them in one place lets the
/// fault-matrix test sweep every point without string coupling.
pub mod points {
    /// Panics a tile job attempt inside the executor's recovery wrapper.
    pub const TILE_PANIC: &str = "tile.panic";
    /// Sleeps a tile job attempt (stragglers, deadline pressure).
    pub const TILE_SLOW: &str = "tile.slow";
    /// Forces the serve job queue to report `Full` on submit.
    pub const SERVE_QUEUE_FULL: &str = "serve.queue_full";
    /// Forces a job's deadline to be already expired at pickup.
    pub const SERVE_DEADLINE: &str = "serve.deadline";
    /// Drops the connection instead of writing a response.
    pub const SERVE_CONN_DROP: &str = "serve.conn_drop";
    /// Truncates a request body mid-read (client died / short write).
    pub const SERVE_BODY_TRUNCATE: &str = "serve.body_truncate";
    /// Inflates the declared body size past the server limit.
    pub const SERVE_BODY_OVERSIZE: &str = "serve.body_oversize";
    /// Drops the trailing byte of a PGM payload before decoding.
    pub const GRID_PGM_TRUNCATE: &str = "grid.pgm_truncate";
    /// Fails JSON parsing at entry (corrupt payload on the wire).
    pub const JSON_INVALID: &str = "json.invalid";

    /// Every registered point, for exhaustive fault-matrix sweeps.
    pub const ALL: &[&str] = &[
        TILE_PANIC,
        TILE_SLOW,
        SERVE_QUEUE_FULL,
        SERVE_DEADLINE,
        SERVE_CONN_DROP,
        SERVE_BODY_TRUNCATE,
        SERVE_BODY_OVERSIZE,
        GRID_PGM_TRUNCATE,
        JSON_INVALID,
    ];

    /// Whether `name` is a registered injection point.
    pub fn is_registered(name: &str) -> bool {
        ALL.contains(&name)
    }
}

/// Marker prefix for panics raised *by* the injector, so test harnesses and
/// [`quiet_injected_panics`] can tell them apart from real bugs.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault:";

/// One armed fault: which point, how often, and over which window.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Registered injection point name.
    pub point: String,
    /// Firing probability in `[0, 1]`.
    pub rate: f64,
    /// Seed for the per-invocation firing decision.
    pub seed: u64,
    /// Maximum number of fires; `None` means unlimited.
    pub limit: Option<u64>,
    /// Number of leading invocations that never fire.
    pub skip: u64,
}

impl FaultSpec {
    /// An always-firing spec with no window, handy in tests.
    pub fn always(point: &str, seed: u64) -> Self {
        FaultSpec {
            point: point.to_string(),
            rate: 1.0,
            seed,
            limit: None,
            skip: 0,
        }
    }

    /// Parses a single `point:rate:seed[:limit[:skip]]` spec.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the malformed field.
    pub fn parse(text: &str) -> Result<FaultSpec, String> {
        let parts: Vec<&str> = text.split(':').collect();
        if parts.len() < 3 || parts.len() > 5 {
            return Err(format!(
                "fault spec {text:?}: expected point:rate:seed[:limit[:skip]]"
            ));
        }
        let point = parts[0].trim();
        if point.is_empty() {
            return Err(format!("fault spec {text:?}: empty point name"));
        }
        if !points::is_registered(point) {
            return Err(format!(
                "fault spec {text:?}: unknown point {point:?} (known: {})",
                points::ALL.join(", ")
            ));
        }
        let rate: f64 = parts[1]
            .trim()
            .parse()
            .map_err(|_| format!("fault spec {text:?}: rate {:?} is not a number", parts[1]))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("fault spec {text:?}: rate {rate} outside [0, 1]"));
        }
        let seed: u64 = parts[2]
            .trim()
            .parse()
            .map_err(|_| format!("fault spec {text:?}: seed {:?} is not a u64", parts[2]))?;
        let limit = match parts.get(3) {
            None => None,
            Some(raw) => {
                let n: u64 = raw
                    .trim()
                    .parse()
                    .map_err(|_| format!("fault spec {text:?}: limit {raw:?} is not a u64"))?;
                if n == 0 {
                    None
                } else {
                    Some(n)
                }
            }
        };
        let skip = match parts.get(4) {
            None => 0,
            Some(raw) => raw
                .trim()
                .parse()
                .map_err(|_| format!("fault spec {text:?}: skip {raw:?} is not a u64"))?,
        };
        Ok(FaultSpec {
            point: point.to_string(),
            rate,
            seed,
            limit,
            skip,
        })
    }
}

/// Parses a full `ILT_FAULTS` value (comma-separated specs; empty entries
/// are ignored so trailing commas are fine).
///
/// # Errors
///
/// Returns the first malformed spec's description.
pub fn parse_specs(text: &str) -> Result<Vec<FaultSpec>, String> {
    let mut specs = Vec::new();
    for part in text.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        specs.push(FaultSpec::parse(part)?);
    }
    Ok(specs)
}

#[derive(Debug)]
struct PointState {
    spec: FaultSpec,
    invocations: u64,
    fired: u64,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Vec<PointState>> = Mutex::new(Vec::new());

fn registry() -> std::sync::MutexGuard<'static, Vec<PointState>> {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms the given fault specs, replacing any previous configuration and
/// resetting all invocation counters. An empty list disarms everything.
pub fn configure(specs: Vec<FaultSpec>) {
    let mut reg = registry();
    reg.clear();
    for spec in specs {
        reg.push(PointState {
            spec,
            invocations: 0,
            fired: 0,
        });
    }
    ACTIVE.store(!reg.is_empty(), Ordering::Release);
}

/// Disarms all faults and resets counters.
pub fn clear() {
    configure(Vec::new());
}

/// Reads `ILT_FAULTS` and arms any well-formed specs. Malformed specs are
/// reported on stderr and skipped (a typo in a fault drill should degrade
/// the drill, not kill the process under test). Returns the number of armed
/// specs.
pub fn configure_from_env() -> usize {
    let Ok(raw) = std::env::var("ILT_FAULTS") else {
        return 0;
    };
    let mut specs = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match FaultSpec::parse(part) {
            Ok(spec) => specs.push(spec),
            Err(why) => eprintln!("ilt-fault: ignoring ILT_FAULTS entry: {why}"),
        }
    }
    let count = specs.len();
    configure(specs);
    if count > 0 {
        quiet_injected_panics();
    }
    count
}

/// True when at least one fault spec is armed. This is the fast path every
/// injection point takes first, so unconfigured builds pay one relaxed load.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// splitmix64 finalizer: a cheap, well-mixed hash for firing decisions.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Whether the named injection point should fire on this invocation.
///
/// Each call counts as one invocation of `point` (whether or not it fires),
/// so the decision sequence is a pure function of the configured seed and
/// the process's invocation order.
pub fn should_fire(point: &str) -> bool {
    if !active() {
        return false;
    }
    let mut reg = registry();
    let Some(state) = reg.iter_mut().find(|s| s.spec.point == point) else {
        return false;
    };
    state.invocations += 1;
    if state.invocations <= state.spec.skip {
        return false;
    }
    if let Some(limit) = state.spec.limit {
        if state.fired >= limit {
            return false;
        }
    }
    let draw = mix(state.spec.seed ^ state.invocations) >> 11;
    let unit = draw as f64 / (1u64 << 53) as f64;
    if unit < state.spec.rate {
        state.fired += 1;
        true
    } else {
        false
    }
}

/// Number of times `point` has fired since the last [`configure`].
pub fn fired_count(point: &str) -> u64 {
    registry()
        .iter()
        .find(|s| s.spec.point == point)
        .map_or(0, |s| s.fired)
}

/// Snapshot of `(point, invocations, fired)` per armed spec, for tests and
/// drill reports.
pub fn snapshot() -> BTreeMap<String, (u64, u64)> {
    registry()
        .iter()
        .map(|s| (s.spec.point.clone(), (s.invocations, s.fired)))
        .collect()
}

/// Installs (once) a panic hook that suppresses the default backtrace spew
/// for panics whose payload starts with [`INJECTED_PANIC_PREFIX`]. Real
/// panics still reach the previous hook. Fault drills inject panics on
/// purpose; their backtraces would otherwise drown the logs.
pub fn quiet_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|m| m.starts_with(INJECTED_PANIC_PREFIX));
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; serialize tests that arm it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parse_full_grammar() {
        let spec = FaultSpec::parse("tile.panic:0.5:42:3:7").unwrap();
        assert_eq!(spec.point, "tile.panic");
        assert_eq!(spec.rate, 0.5);
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.limit, Some(3));
        assert_eq!(spec.skip, 7);
        let spec = FaultSpec::parse("json.invalid:1:9").unwrap();
        assert_eq!(spec.limit, None);
        assert_eq!(spec.skip, 0);
        // limit 0 means unlimited.
        assert_eq!(FaultSpec::parse("tile.slow:1:9:0").unwrap().limit, None);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "tile.panic",
            "tile.panic:1.0",
            "nope.nope:1.0:1",
            "tile.panic:2.0:1",
            "tile.panic:-0.1:1",
            "tile.panic:x:1",
            "tile.panic:1.0:x",
            "tile.panic:1.0:1:x",
            "tile.panic:1.0:1:1:x",
            "tile.panic:1.0:1:1:1:1",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_specs_skips_empty_entries() {
        let specs = parse_specs("tile.panic:1:1, ,json.invalid:0.5:2,").unwrap();
        assert_eq!(specs.len(), 2);
        assert!(parse_specs("tile.panic:1:1,garbage").is_err());
    }

    #[test]
    fn unconfigured_points_never_fire() {
        let _g = lock();
        clear();
        assert!(!active());
        assert!(!should_fire(points::TILE_PANIC));
        assert_eq!(fired_count(points::TILE_PANIC), 0);
    }

    #[test]
    fn rate_one_always_fires_and_rate_zero_never_fires() {
        let _g = lock();
        configure(vec![
            FaultSpec::always(points::TILE_PANIC, 1),
            FaultSpec {
                rate: 0.0,
                ..FaultSpec::always(points::TILE_SLOW, 1)
            },
        ]);
        for _ in 0..32 {
            assert!(should_fire(points::TILE_PANIC));
            assert!(!should_fire(points::TILE_SLOW));
        }
        assert_eq!(fired_count(points::TILE_PANIC), 32);
        assert_eq!(fired_count(points::TILE_SLOW), 0);
        clear();
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let _g = lock();
        let run = |seed: u64| -> Vec<bool> {
            configure(vec![FaultSpec {
                rate: 0.5,
                ..FaultSpec::always(points::JSON_INVALID, seed)
            }]);
            (0..64).map(|_| should_fire(points::JSON_INVALID)).collect()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should give different patterns");
        let fires = a.iter().filter(|f| **f).count();
        assert!(
            (8..=56).contains(&fires),
            "rate 0.5 fired {fires}/64 times; hash badly skewed"
        );
        clear();
    }

    #[test]
    fn limit_and_skip_bound_the_window() {
        let _g = lock();
        configure(vec![FaultSpec {
            limit: Some(2),
            skip: 1,
            ..FaultSpec::always(points::TILE_PANIC, 3)
        }]);
        let pattern: Vec<bool> = (0..5).map(|_| should_fire(points::TILE_PANIC)).collect();
        assert_eq!(pattern, vec![false, true, true, false, false]);
        assert_eq!(fired_count(points::TILE_PANIC), 2);
        clear();
    }

    #[test]
    fn configure_resets_counters() {
        let _g = lock();
        configure(vec![FaultSpec {
            limit: Some(1),
            ..FaultSpec::always(points::TILE_PANIC, 3)
        }]);
        assert!(should_fire(points::TILE_PANIC));
        assert!(!should_fire(points::TILE_PANIC));
        configure(vec![FaultSpec {
            limit: Some(1),
            ..FaultSpec::always(points::TILE_PANIC, 3)
        }]);
        assert!(should_fire(points::TILE_PANIC), "counters should reset");
        clear();
    }

    #[test]
    fn snapshot_reports_invocations_and_fires() {
        let _g = lock();
        configure(vec![FaultSpec {
            rate: 0.0,
            ..FaultSpec::always(points::TILE_SLOW, 5)
        }]);
        let _ = should_fire(points::TILE_SLOW);
        let _ = should_fire(points::TILE_SLOW);
        let snap = snapshot();
        assert_eq!(snap.get(points::TILE_SLOW), Some(&(2, 0)));
        clear();
    }
}

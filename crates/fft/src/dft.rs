//! Naive `O(n^2)` discrete Fourier transform used as a test oracle.
//!
//! The FFT implementation in [`crate::plan`] is validated against this
//! straightforward translation of the DFT definition. It is also handy when
//! a caller needs a transform of a small non-power-of-two length (the crate's
//! fast path is power-of-two only).

use crate::complex::Complex;
use crate::plan::Direction;

/// Computes the DFT of `input` by direct summation.
///
/// The forward direction computes `X_k = sum_n x_n e^{-2 pi i k n / N}`;
/// the inverse direction includes the `1/N` normalisation so that composing
/// the two directions is the identity.
///
/// # Examples
///
/// ```
/// use ilt_fft::{dft_reference, Complex, Direction};
///
/// let x = vec![Complex::ONE, Complex::ZERO, Complex::ZERO];
/// let spectrum = dft_reference(&x, Direction::Forward);
/// assert!(spectrum.iter().all(|z| (*z - Complex::ONE).abs() < 1e-12));
/// ```
pub fn dft_reference(input: &[Complex], dir: Direction) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = dir.sign();
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = Complex::ZERO;
        for (i, x) in input.iter().enumerate() {
            let theta = sign * 2.0 * std::f64::consts::PI * (k * i % n) as f64 / n as f64;
            acc = acc.mul_add(*x, Complex::from_polar(1.0, theta));
        }
        if matches!(dir, Direction::Inverse) {
            acc = acc.scale(1.0 / n as f64);
        }
        out.push(acc);
    }
    out
}

/// Computes the 2-D DFT of a row-major `rows x cols` buffer by direct
/// summation. Intended only for validating the fast 2-D transform on tiny
/// inputs; complexity is `O((rows*cols)^2)`.
///
/// # Panics
///
/// Panics if `input.len() != rows * cols`.
pub fn dft2_reference(input: &[Complex], rows: usize, cols: usize, dir: Direction) -> Vec<Complex> {
    assert_eq!(input.len(), rows * cols, "buffer does not match shape");
    let sign = dir.sign();
    let mut out = vec![Complex::ZERO; rows * cols];
    for ky in 0..rows {
        for kx in 0..cols {
            let mut acc = Complex::ZERO;
            for y in 0..rows {
                for x in 0..cols {
                    let theta = sign
                        * 2.0
                        * std::f64::consts::PI
                        * (ky as f64 * y as f64 / rows as f64 + kx as f64 * x as f64 / cols as f64);
                    acc = acc.mul_add(input[y * cols + x], Complex::from_polar(1.0, theta));
                }
            }
            if matches!(dir, Direction::Inverse) {
                acc = acc.scale(1.0 / (rows * cols) as f64);
            }
            out[ky * cols + kx] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(dft_reference(&[], Direction::Forward).is_empty());
    }

    #[test]
    fn dc_component_is_sum() {
        let x = vec![
            Complex::from_re(1.0),
            Complex::from_re(2.0),
            Complex::from_re(3.0),
        ];
        let spectrum = dft_reference(&x, Direction::Forward);
        assert!((spectrum[0].re - 6.0).abs() < 1e-12);
        assert!(spectrum[0].im.abs() < 1e-12);
    }

    #[test]
    fn forward_then_inverse_is_identity() {
        let x: Vec<Complex> = (0..5)
            .map(|i| Complex::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let spec = dft_reference(&x, Direction::Forward);
        let back = dft_reference(&spec, Direction::Inverse);
        for (a, b) in x.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn works_for_non_power_of_two() {
        let x: Vec<Complex> = (0..7).map(|i| Complex::from_re(i as f64)).collect();
        let spec = dft_reference(&x, Direction::Forward);
        assert_eq!(spec.len(), 7);
        // Parseval for the naive transform too.
        let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let fe: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 7.0;
        assert!((te - fe).abs() < 1e-9);
    }

    #[test]
    fn dft2_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 6];
        x[0] = Complex::ONE;
        let spec = dft2_reference(&x, 2, 3, Direction::Forward);
        for z in &spec {
            assert!((*z - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn dft2_roundtrip() {
        let x: Vec<Complex> = (0..12)
            .map(|i| Complex::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        let spec = dft2_reference(&x, 3, 4, Direction::Forward);
        let back = dft2_reference(&spec, 3, 4, Direction::Inverse);
        for (a, b) in x.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "buffer does not match shape")]
    fn dft2_shape_mismatch_panics() {
        let x = vec![Complex::ZERO; 5];
        let _ = dft2_reference(&x, 2, 3, Direction::Forward);
    }
}

//! Runtime-gated x86_64 vector kernels for the butterfly inner loop.
//!
//! The portable butterfly in [`crate::plan`] is written over explicit
//! two-complex lanes so the autovectorizer can lower it to 128/256-bit ops,
//! but the complex multiply still costs it a shuffle-heavy dance. On
//! x86_64 with AVX2+FMA the whole two-lane butterfly is five vector
//! instructions (`movedup`/`permute` to splat the twiddle components,
//! `fmaddsub` for the complex product, one add and one sub), so this module
//! provides that kernel behind a one-time `is_x86_feature_detected!` check.
//!
//! The dispatch decision is made once per process and never changes, so
//! every transform in a process runs the same code path — the property the
//! serial-vs-parallel and workspace-reuse bit-identity suites rely on.
//! (FMA contraction rounds differently from the two-step scalar product,
//! so results may differ across *machines* in the last ulp; all
//! cross-machine comparisons in the workspace are tolerance-based.)
//!
//! This is the only module in the crate allowed to use `unsafe`: the
//! intrinsics themselves are safe for any input once the CPU supports
//! them (verified at runtime before the function pointer is published),
//! and all loads/stores stay inside the slices' bounds by construction
//! (`lo`, `hi` and `tw` share one length, a multiple of two).

use crate::complex::Complex;

/// Returns `true` if the AVX2+FMA butterfly kernel is available on this
/// CPU (always `false` off x86_64). The answer is computed once and cached.
#[cfg(target_arch = "x86_64")]
pub fn butterfly_kernel_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

/// Returns `true` if the AVX2+FMA butterfly kernel is available on this
/// CPU (always `false` off x86_64).
#[cfg(not(target_arch = "x86_64"))]
pub fn butterfly_kernel_available() -> bool {
    false
}

/// AVX2+FMA butterfly block: `lo[k], hi[k] <- lo[k] ± w[k]*hi[k]`, two
/// complex lanes per iteration.
///
/// # Panics
///
/// Panics (debug) unless the three slices share one even length. Callers
/// must only reach this after [`butterfly_kernel_available`] returned
/// `true`.
#[cfg(target_arch = "x86_64")]
pub fn butterfly_block_x86(lo: &mut [Complex], hi: &mut [Complex], tw: &[Complex]) {
    debug_assert_eq!(lo.len(), hi.len());
    debug_assert_eq!(lo.len(), tw.len());
    debug_assert!(lo.len().is_multiple_of(2));
    // SAFETY: the caller checked `butterfly_kernel_available()`, which
    // verified avx2+fma at runtime; the kernel only dereferences within
    // the equal-length input slices.
    unsafe { butterfly_block_avx(lo, hi, tw) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn butterfly_block_avx(lo: &mut [Complex], hi: &mut [Complex], tw: &[Complex]) {
    use core::arch::x86_64::*;
    let doubles = lo.len() * 2;
    let lp = lo.as_mut_ptr().cast::<f64>();
    let hp = hi.as_mut_ptr().cast::<f64>();
    let wp = tw.as_ptr().cast::<f64>();
    let mut k = 0;
    while k < doubles {
        // SAFETY: k + 3 < doubles because the length is a multiple of four
        // doubles (two complex values) and k advances by four.
        unsafe {
            let u = _mm256_loadu_pd(lp.add(k));
            let v = _mm256_loadu_pd(hp.add(k));
            let w = _mm256_loadu_pd(wp.add(k));
            // Splat twiddle components: wr = [re0, re0, re1, re1],
            // wi = [im0, im0, im1, im1]; vs swaps each lane's re/im.
            let wr = _mm256_movedup_pd(w);
            let wi = _mm256_permute_pd(w, 0b1111);
            let vs = _mm256_permute_pd(v, 0b0101);
            // fmaddsub: even lanes wr*v - wi*vs, odd lanes wr*v + wi*vs —
            // exactly the interleaved complex product w * v.
            let t = _mm256_fmaddsub_pd(wr, v, _mm256_mul_pd(wi, vs));
            _mm256_storeu_pd(lp.add(k), _mm256_add_pd(u, t));
            _mm256_storeu_pd(hp.add(k), _mm256_sub_pd(u, t));
        }
        k += 4;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_is_stable() {
        assert_eq!(butterfly_kernel_available(), butterfly_kernel_available());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn kernel_matches_scalar_butterfly() {
        if !butterfly_kernel_available() {
            return;
        }
        let n = 8;
        let mk = |s: f64| -> Vec<Complex> {
            (0..n)
                .map(|i| Complex::new((i as f64 * s).sin(), (i as f64 * s + 0.3).cos()))
                .collect()
        };
        let (lo0, hi0, tw) = (mk(0.7), mk(1.3), mk(2.1));
        let mut lo = lo0.clone();
        let mut hi = hi0.clone();
        butterfly_block_x86(&mut lo, &mut hi, &tw);
        for k in 0..n {
            let t = tw[k] * hi0[k];
            assert!((lo[k] - (lo0[k] + t)).abs() < 1e-12);
            assert!((hi[k] - (lo0[k] - t)).abs() < 1e-12);
        }
    }
}

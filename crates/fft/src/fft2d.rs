//! Two-dimensional FFT built from row/column 1-D transforms.
//!
//! Lithography simulation spends nearly all of its time in 2-D transforms of
//! the mask and of per-kernel products, so [`Fft2d`] keeps both 1-D plans and
//! a scratch buffer alive across calls.

use std::cell::RefCell;
use std::sync::Arc;

use crate::cache::shared_plan;
use crate::complex::Complex;
use crate::error::FftError;
use crate::plan::{Direction, FftPlan};

/// A reusable 2-D FFT for row-major `rows x cols` buffers.
///
/// Both dimensions must be powers of two. The transform is separable: each
/// row is transformed, then each column.
///
/// # Examples
///
/// ```
/// use ilt_fft::{Complex, Fft2d};
///
/// # fn main() -> Result<(), ilt_fft::FftError> {
/// let fft = Fft2d::new(4, 4)?;
/// let mut img = vec![Complex::ZERO; 16];
/// img[0] = Complex::ONE; // impulse at the origin
/// fft.forward(&mut img)?;
/// assert!(img.iter().all(|z| (*z - Complex::ONE).abs() < 1e-12));
/// fft.inverse(&mut img)?;
/// assert!((img[0] - Complex::ONE).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Fft2d {
    rows: usize,
    cols: usize,
    /// 1-D plans come from the process-wide [`crate::cache`], so every
    /// `Fft2d` of a given shape shares one set of twiddle tables.
    row_plan: Arc<FftPlan>,
    col_plan: Arc<FftPlan>,
    /// Scratch column buffer; `RefCell` so transforms can take `&self` and a
    /// single `Fft2d` can be shared immutably within one thread.
    scratch: RefCell<Vec<Complex>>,
}

impl Fft2d {
    /// Creates a 2-D plan for `rows x cols` buffers.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NonPowerOfTwo`] if either dimension is not a
    /// nonzero power of two.
    pub fn new(rows: usize, cols: usize) -> Result<Self, FftError> {
        let row_plan = shared_plan(cols)?;
        let col_plan = shared_plan(rows)?;
        Ok(Fft2d {
            rows,
            cols,
            row_plan,
            col_plan,
            scratch: RefCell::new(vec![Complex::ZERO; rows]),
        })
    }

    /// Number of rows this plan transforms.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns this plan transforms.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements (`rows * cols`).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Returns `true` if the planned shape is empty (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// In-place forward 2-D FFT.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn forward(&self, data: &mut [Complex]) -> Result<(), FftError> {
        ilt_telemetry::counter_add("fft.forward", 1);
        self.transform(data, Direction::Forward)
    }

    /// In-place inverse 2-D FFT with `1/(rows*cols)` normalisation.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn inverse(&self, data: &mut [Complex]) -> Result<(), FftError> {
        ilt_telemetry::counter_add("fft.inverse", 1);
        self.transform(data, Direction::Inverse)?;
        let inv = 1.0 / self.len() as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
        Ok(())
    }

    /// In-place 2-D transform without normalisation.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn transform(&self, data: &mut [Complex], dir: Direction) -> Result<(), FftError> {
        if data.len() != self.len() {
            return Err(FftError::ShapeMismatch {
                expected: self.len(),
                actual: data.len(),
            });
        }
        // Rows.
        for row in data.chunks_exact_mut(self.cols) {
            self.row_plan
                .transform(row, dir)
                .expect("row length matches plan by construction");
        }
        // Columns, via a gather/transform/scatter through the scratch buffer.
        let mut scratch = self.scratch.borrow_mut();
        for c in 0..self.cols {
            for r in 0..self.rows {
                scratch[r] = data[r * self.cols + c];
            }
            self.col_plan
                .transform(&mut scratch, dir)
                .expect("column length matches plan by construction");
            for r in 0..self.rows {
                data[r * self.cols + c] = scratch[r];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft2_reference;

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    fn ramp(rows: usize, cols: usize) -> Vec<Complex> {
        (0..rows * cols)
            .map(|i| Complex::new((i as f64 * 0.13).sin(), (i as f64 * 0.41).cos()))
            .collect()
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Fft2d::new(3, 4).is_err());
        assert!(Fft2d::new(4, 0).is_err());
        let fft = Fft2d::new(4, 4).unwrap();
        let mut short = vec![Complex::ZERO; 8];
        assert!(matches!(
            fft.forward(&mut short),
            Err(FftError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn accessors() {
        let fft = Fft2d::new(8, 4).unwrap();
        assert_eq!(fft.rows(), 8);
        assert_eq!(fft.cols(), 4);
        assert_eq!(fft.len(), 32);
        assert!(!fft.is_empty());
    }

    #[test]
    fn matches_reference_on_rectangular_input() {
        let (rows, cols) = (4, 8);
        let data = ramp(rows, cols);
        let reference = dft2_reference(&data, rows, cols, Direction::Forward);
        let fft = Fft2d::new(rows, cols).unwrap();
        let mut fast = data;
        fft.forward(&mut fast).unwrap();
        assert!(max_err(&fast, &reference) < 1e-9);
    }

    #[test]
    fn roundtrip_identity() {
        let (rows, cols) = (16, 16);
        let data = ramp(rows, cols);
        let fft = Fft2d::new(rows, cols).unwrap();
        let mut working = data.clone();
        fft.forward(&mut working).unwrap();
        fft.inverse(&mut working).unwrap();
        assert!(max_err(&working, &data) < 1e-10);
    }

    #[test]
    fn parseval_2d() {
        let (rows, cols) = (8, 8);
        let data = ramp(rows, cols);
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let fft = Fft2d::new(rows, cols).unwrap();
        let mut freq = data;
        fft.forward(&mut freq).unwrap();
        let freq_energy: f64 =
            freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / (rows * cols) as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn separable_rows_then_cols_equals_cols_then_rows() {
        // The 2-D DFT is separable, so transforming a shifted impulse must
        // produce the tensor product of two 1-D linear phases.
        let (rows, cols) = (8, 4);
        let fft = Fft2d::new(rows, cols).unwrap();
        let mut data = vec![Complex::ZERO; rows * cols];
        data[cols + 2] = Complex::ONE;
        fft.forward(&mut data).unwrap();
        for ky in 0..rows {
            for kx in 0..cols {
                let theta = -2.0
                    * std::f64::consts::PI
                    * (ky as f64 * 1.0 / rows as f64 + kx as f64 * 2.0 / cols as f64);
                let expect = Complex::from_polar(1.0, theta);
                assert!((data[ky * cols + kx] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn convolution_theorem_small_case() {
        // Circular convolution of two images equals the inverse FFT of the
        // product of their spectra — the identity Eq. (2) of the paper uses.
        let (rows, cols) = (4, 4);
        let a = ramp(rows, cols);
        let b: Vec<Complex> = (0..rows * cols)
            .map(|i| Complex::from_re(((i * 7) % 5) as f64))
            .collect();
        // Direct circular convolution.
        let mut direct = vec![Complex::ZERO; rows * cols];
        for y in 0..rows {
            for x in 0..cols {
                let mut acc = Complex::ZERO;
                for v in 0..rows {
                    for u in 0..cols {
                        let yy = (y + rows - v) % rows;
                        let xx = (x + cols - u) % cols;
                        acc = acc.mul_add(a[v * cols + u], b[yy * cols + xx]);
                    }
                }
                direct[y * cols + x] = acc;
            }
        }
        // Frequency-domain product.
        let fft = Fft2d::new(rows, cols).unwrap();
        let mut fa = a;
        let mut fb = b;
        fft.forward(&mut fa).unwrap();
        fft.forward(&mut fb).unwrap();
        let mut prod: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| *x * *y).collect();
        fft.inverse(&mut prod).unwrap();
        assert!(max_err(&prod, &direct) < 1e-9);
    }
}

//! Two-dimensional FFT built from row/column 1-D transforms.
//!
//! Lithography simulation spends nearly all of its time in 2-D transforms of
//! the mask and of per-kernel products, so [`Fft2d`] keeps both 1-D plans
//! alive across calls. The column pass runs as blocked transpose → row pass
//! → transpose back (cache-friendly contiguous transforms instead of a
//! strided gather/scatter), with the inverse `1/(rows*cols)` normalisation
//! fused into the final transpose. Square transforms — the only shape on
//! the litho hot path — transpose in place and perform **no** heap
//! allocation.
//!
//! For the per-kernel inverse of Eq. (2) the spectrum is zero outside a
//! small `P x P` support, so [`Fft2d::inverse_support`] skips the
//! `rows - P` all-zero first-pass transforms entirely; the skipped work is
//! counted on the `fft.rows_skipped` telemetry counter.

use std::sync::Arc;

use ilt_par::InnerPool;

use crate::cache::{shared_plan, tuned_params};
use crate::complex::Complex;
use crate::error::FftError;
use crate::plan::{Direction, FftPlan};

/// Default edge length of the blocked-transpose tiles. 32 complex values
/// per row of a block is 512 bytes — two blocks fit comfortably in L1
/// alongside the twiddle tables. [`crate::cache::tuned_params`] may pick a
/// different edge per transform size.
pub(crate) const DEFAULT_TRANSPOSE_BLOCK: usize = 32;

/// Default number of rows per pooled work item in batched row passes.
pub(crate) const DEFAULT_ROW_BATCH: usize = 1;

/// A reusable 2-D FFT for row-major `rows x cols` buffers.
///
/// Both dimensions must be powers of two. The transform is separable: each
/// row is transformed, then each column (via transposes). The plan holds no
/// per-call state, so one `Fft2d` can be shared freely across threads
/// (`Fft2d: Sync`), e.g. by [`ilt_par::InnerPool`] workers.
///
/// # Examples
///
/// ```
/// use ilt_fft::{Complex, Fft2d};
///
/// # fn main() -> Result<(), ilt_fft::FftError> {
/// let fft = Fft2d::new(4, 4)?;
/// let mut img = vec![Complex::ZERO; 16];
/// img[0] = Complex::ONE; // impulse at the origin
/// fft.forward(&mut img)?;
/// assert!(img.iter().all(|z| (*z - Complex::ONE).abs() < 1e-12));
/// fft.inverse(&mut img)?;
/// assert!((img[0] - Complex::ONE).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Fft2d {
    rows: usize,
    cols: usize,
    /// 1-D plans come from the process-wide [`crate::cache`], so every
    /// `Fft2d` of a given shape shares one set of twiddle tables.
    row_plan: Arc<FftPlan>,
    col_plan: Arc<FftPlan>,
    /// Transpose tile edge, autotuned per size (square shapes only).
    block: usize,
    /// Rows per pooled work item, autotuned per (size, thread budget).
    row_batch: usize,
}

impl Fft2d {
    /// Creates a 2-D plan for `rows x cols` buffers.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NonPowerOfTwo`] if either dimension is not a
    /// nonzero power of two.
    pub fn new(rows: usize, cols: usize) -> Result<Self, FftError> {
        let row_plan = shared_plan(cols)?;
        let col_plan = shared_plan(rows)?;
        // Layout knobs are autotuned for the square hot-path shape; the
        // rectangular diagnostic shapes just take the defaults.
        let params = if rows == cols {
            tuned_params(rows, ilt_par::configured_inner_threads())
        } else {
            crate::cache::TunedParams::default()
        };
        Ok(Fft2d {
            rows,
            cols,
            row_plan,
            col_plan,
            block: params.block,
            row_batch: params.row_batch,
        })
    }

    /// Number of rows this plan transforms.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns this plan transforms.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements (`rows * cols`).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Returns `true` if the planned shape is empty (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// In-place forward 2-D FFT.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn forward(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.forward_with_pool(data, &InnerPool::serial())
    }

    /// In-place inverse 2-D FFT with `1/(rows*cols)` normalisation.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn inverse(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.inverse_with_pool(data, &InnerPool::serial())
    }

    /// [`Fft2d::forward`] with row batches spread across `pool` workers.
    ///
    /// Every 1-D transform writes a disjoint row, so the result is
    /// bit-identical to the serial transform for any worker count.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn forward_with_pool(
        &self,
        data: &mut [Complex],
        pool: &InnerPool,
    ) -> Result<(), FftError> {
        ilt_telemetry::counter_add("fft.forward", 1);
        self.transform_with_pool(data, Direction::Forward, pool)
    }

    /// [`Fft2d::inverse`] with row batches spread across `pool` workers.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn inverse_with_pool(
        &self,
        data: &mut [Complex],
        pool: &InnerPool,
    ) -> Result<(), FftError> {
        ilt_telemetry::counter_add("fft.inverse", 1);
        self.transform_normalised(data, Direction::Inverse, pool, None)
    }

    /// In-place 2-D transform without normalisation.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn transform(&self, data: &mut [Complex], dir: Direction) -> Result<(), FftError> {
        self.transform_with_pool(data, dir, &InnerPool::serial())
    }

    /// In-place 2-D transform without normalisation, row batches on `pool`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn transform_with_pool(
        &self,
        data: &mut [Complex],
        dir: Direction,
        pool: &InnerPool,
    ) -> Result<(), FftError> {
        self.transform_normalised(data, dir, pool, None)
    }

    /// In-place inverse of a spectrum known to be zero outside the listed
    /// rows.
    ///
    /// `support_rows` are the (unshifted) indices of the rows that may hold
    /// nonzero bins; every other row **must** already be zero in `data` —
    /// the first transform pass simply skips them (the FFT of a zero row is
    /// the zero row). For the paper's per-kernel inverse, where only a
    /// centered `P x P` support survives the crop-multiply, this removes
    /// `rows - P` of the `rows` first-pass transforms. The skipped count
    /// feeds the `fft.rows_skipped` telemetry counter.
    ///
    /// The `1/(rows*cols)` normalisation is applied exactly as in
    /// [`Fft2d::inverse`], so the output is bit-identical to a dense
    /// inverse of the same (zero-padded) spectrum.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::ShapeMismatch`] if `data.len() != rows * cols`,
    /// or [`FftError::LengthMismatch`] if a support row index is out of
    /// range.
    pub fn inverse_support(
        &self,
        data: &mut [Complex],
        support_rows: &[usize],
    ) -> Result<(), FftError> {
        self.inverse_support_with_pool(data, support_rows, &InnerPool::serial())
    }

    /// [`Fft2d::inverse_support`] with second-pass row batches on `pool`.
    ///
    /// # Errors
    ///
    /// Same as [`Fft2d::inverse_support`].
    pub fn inverse_support_with_pool(
        &self,
        data: &mut [Complex],
        support_rows: &[usize],
        pool: &InnerPool,
    ) -> Result<(), FftError> {
        if let Some(&bad) = support_rows.iter().find(|&&r| r >= self.rows) {
            return Err(FftError::LengthMismatch {
                expected: self.rows,
                actual: bad,
            });
        }
        ilt_telemetry::counter_add("fft.inverse", 1);
        ilt_telemetry::counter_add(
            "fft.rows_skipped",
            (self.rows - support_rows.len().min(self.rows)) as u64,
        );
        self.transform_normalised(data, Direction::Inverse, pool, Some(support_rows))
    }

    /// The shared implementation: first-pass row transforms (optionally
    /// restricted to a sparse support), transpose, second-pass row
    /// transforms over the former columns, transpose back. For
    /// [`Direction::Inverse`] the `1/(rows*cols)` scale is fused into the
    /// final transpose, saving one full sweep over the buffer.
    fn transform_normalised(
        &self,
        data: &mut [Complex],
        dir: Direction,
        pool: &InnerPool,
        support_rows: Option<&[usize]>,
    ) -> Result<(), FftError> {
        if data.len() != self.len() {
            return Err(FftError::ShapeMismatch {
                expected: self.len(),
                actual: data.len(),
            });
        }
        let scale = match dir {
            Direction::Forward => None,
            Direction::Inverse => Some(1.0 / self.len() as f64),
        };
        // First pass: transform the rows (only the support rows when the
        // caller vouches the rest are zero).
        match support_rows {
            Some(rows) => {
                for &r in rows {
                    self.row_plan
                        .transform(&mut data[r * self.cols..(r + 1) * self.cols], dir)
                        .expect("row length matches plan by construction");
                }
            }
            None => {
                let plan = &self.row_plan;
                let batch = self.row_batch.min(self.rows);
                pool.for_each_chunk_mut(data, self.cols * batch, |_, rows| {
                    for row in rows.chunks_exact_mut(self.cols) {
                        plan.transform(row, dir)
                            .expect("row length matches plan by construction");
                    }
                });
            }
        }
        if self.rows == self.cols {
            // Square: transpose in place, no scratch at all.
            transpose_square_block(data, self.rows, self.block);
            let plan = &self.col_plan;
            let batch = self.row_batch.min(self.cols);
            pool.for_each_chunk_mut(data, self.rows * batch, |_, rows| {
                for row in rows.chunks_exact_mut(self.rows) {
                    plan.transform(row, dir)
                        .expect("column length matches plan by construction");
                }
            });
            transpose_square_scaled(data, self.rows, scale, self.block);
        } else {
            // Rectangular (test/diagnostic shapes only — the litho hot path
            // is square): transpose through a temporary.
            let mut t = vec![Complex::ZERO; data.len()];
            transpose_into_block(data, self.rows, self.cols, &mut t, self.block);
            let plan = &self.col_plan;
            pool.for_each_chunk_mut(&mut t, self.rows, |_, row| {
                plan.transform(row, dir)
                    .expect("column length matches plan by construction");
            });
            transpose_into_block(&t, self.cols, self.rows, data, self.block);
            if let Some(s) = scale {
                for z in data.iter_mut() {
                    *z = z.scale(s);
                }
            }
        }
        Ok(())
    }

    /// Forward 2-D FFT of a **square** buffer where only the listed output
    /// columns will be read, leaving the result *transposed*.
    ///
    /// The full row pass runs as usual, then only the `support_cols` column
    /// transforms run and the final transpose-back is skipped entirely: on
    /// return, spectrum bin `(r, c)` sits at `data[c * n + r]` for every
    /// `c` in `support_cols`, and every other position is unspecified. For
    /// the paper's per-kernel gradient forward, where only the centered
    /// `P x P` support is sampled afterwards, this removes `n - P` of the
    /// `n` column transforms *and* one full transpose sweep. The skipped
    /// count feeds the `fft.rows_skipped` telemetry counter.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::ShapeMismatch`] if the plan is not square or
    /// `data.len() != rows * cols`, or [`FftError::LengthMismatch`] if a
    /// support column index is out of range.
    pub fn forward_support_transposed(
        &self,
        data: &mut [Complex],
        support_cols: &[usize],
        pool: &InnerPool,
    ) -> Result<(), FftError> {
        if self.rows != self.cols || data.len() != self.len() {
            return Err(FftError::ShapeMismatch {
                expected: self.len(),
                actual: data.len(),
            });
        }
        if let Some(&bad) = support_cols.iter().find(|&&c| c >= self.cols) {
            return Err(FftError::LengthMismatch {
                expected: self.cols,
                actual: bad,
            });
        }
        ilt_telemetry::counter_add("fft.forward", 1);
        ilt_telemetry::counter_add(
            "fft.rows_skipped",
            (self.cols - support_cols.len().min(self.cols)) as u64,
        );
        let n = self.rows;
        let plan = &self.row_plan;
        let batch = self.row_batch.min(n);
        pool.for_each_chunk_mut(data, n * batch, |_, rows| {
            for row in rows.chunks_exact_mut(n) {
                plan.transform(row, Direction::Forward)
                    .expect("row length matches plan by construction");
            }
        });
        transpose_square_block(data, n, self.block);
        for &c in support_cols {
            self.col_plan
                .transform(&mut data[c * n..(c + 1) * n], Direction::Forward)
                .expect("column length matches plan by construction");
        }
        Ok(())
    }
}

/// In-place blocked transpose of a square `n x n` row-major buffer with a
/// `block x block` tile walk.
pub(crate) fn transpose_square_block(data: &mut [Complex], n: usize, block: usize) {
    let block = block.max(1);
    for bi in (0..n).step_by(block) {
        for bj in (bi..n).step_by(block) {
            let i_end = (bi + block).min(n);
            let j_end = (bj + block).min(n);
            for i in bi..i_end {
                let j_start = if bi == bj { i + 1 } else { bj };
                for j in j_start..j_end {
                    data.swap(i * n + j, j * n + i);
                }
            }
        }
    }
}

/// [`transpose_square_block`] with an optional per-element scale fused
/// into the swap (each element is scaled exactly once).
fn transpose_square_scaled(data: &mut [Complex], n: usize, scale: Option<f64>, block: usize) {
    let Some(s) = scale else {
        transpose_square_block(data, n, block);
        return;
    };
    let block = block.max(1);
    for bi in (0..n).step_by(block) {
        for bj in (bi..n).step_by(block) {
            let i_end = (bi + block).min(n);
            let j_end = (bj + block).min(n);
            for i in bi..i_end {
                if bi == bj {
                    let d = i * n + i;
                    data[d] = data[d].scale(s);
                }
                let j_start = if bi == bj { i + 1 } else { bj };
                for j in j_start..j_end {
                    let a = i * n + j;
                    let b = j * n + i;
                    let t = data[a].scale(s);
                    data[a] = data[b].scale(s);
                    data[b] = t;
                }
            }
        }
    }
}

/// Blocked out-of-place transpose: `src` is `rows x cols`, `dst` becomes
/// `cols x rows`.
pub(crate) fn transpose_into_block(
    src: &[Complex],
    rows: usize,
    cols: usize,
    dst: &mut [Complex],
    block: usize,
) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    let block = block.max(1);
    for bi in (0..rows).step_by(block) {
        for bj in (0..cols).step_by(block) {
            for i in bi..(bi + block).min(rows) {
                for j in bj..(bj + block).min(cols) {
                    dst[j * rows + i] = src[i * cols + j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft2_reference;

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    fn ramp(rows: usize, cols: usize) -> Vec<Complex> {
        (0..rows * cols)
            .map(|i| Complex::new((i as f64 * 0.13).sin(), (i as f64 * 0.41).cos()))
            .collect()
    }

    #[test]
    fn plan_is_sync_and_send() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Fft2d>();
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Fft2d::new(3, 4).is_err());
        assert!(Fft2d::new(4, 0).is_err());
        let fft = Fft2d::new(4, 4).unwrap();
        let mut short = vec![Complex::ZERO; 8];
        assert!(matches!(
            fft.forward(&mut short),
            Err(FftError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn accessors() {
        let fft = Fft2d::new(8, 4).unwrap();
        assert_eq!(fft.rows(), 8);
        assert_eq!(fft.cols(), 4);
        assert_eq!(fft.len(), 32);
        assert!(!fft.is_empty());
    }

    #[test]
    fn matches_reference_on_rectangular_input() {
        let (rows, cols) = (4, 8);
        let data = ramp(rows, cols);
        let reference = dft2_reference(&data, rows, cols, Direction::Forward);
        let fft = Fft2d::new(rows, cols).unwrap();
        let mut fast = data;
        fft.forward(&mut fast).unwrap();
        assert!(max_err(&fast, &reference) < 1e-9);
    }

    #[test]
    fn roundtrip_identity() {
        let (rows, cols) = (16, 16);
        let data = ramp(rows, cols);
        let fft = Fft2d::new(rows, cols).unwrap();
        let mut working = data.clone();
        fft.forward(&mut working).unwrap();
        fft.inverse(&mut working).unwrap();
        assert!(max_err(&working, &data) < 1e-10);
    }

    #[test]
    fn rectangular_roundtrip_identity() {
        let (rows, cols) = (8, 32);
        let data = ramp(rows, cols);
        let fft = Fft2d::new(rows, cols).unwrap();
        let mut working = data.clone();
        fft.forward(&mut working).unwrap();
        fft.inverse(&mut working).unwrap();
        assert!(max_err(&working, &data) < 1e-10);
    }

    #[test]
    fn parseval_2d() {
        let (rows, cols) = (8, 8);
        let data = ramp(rows, cols);
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let fft = Fft2d::new(rows, cols).unwrap();
        let mut freq = data;
        fft.forward(&mut freq).unwrap();
        let freq_energy: f64 =
            freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / (rows * cols) as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn separable_rows_then_cols_equals_cols_then_rows() {
        // The 2-D DFT is separable, so transforming a shifted impulse must
        // produce the tensor product of two 1-D linear phases.
        let (rows, cols) = (8, 4);
        let fft = Fft2d::new(rows, cols).unwrap();
        let mut data = vec![Complex::ZERO; rows * cols];
        data[cols + 2] = Complex::ONE;
        fft.forward(&mut data).unwrap();
        for ky in 0..rows {
            for kx in 0..cols {
                let theta = -2.0
                    * std::f64::consts::PI
                    * (ky as f64 * 1.0 / rows as f64 + kx as f64 * 2.0 / cols as f64);
                let expect = Complex::from_polar(1.0, theta);
                assert!((data[ky * cols + kx] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn convolution_theorem_small_case() {
        // Circular convolution of two images equals the inverse FFT of the
        // product of their spectra — the identity Eq. (2) of the paper uses.
        let (rows, cols) = (4, 4);
        let a = ramp(rows, cols);
        let b: Vec<Complex> = (0..rows * cols)
            .map(|i| Complex::from_re(((i * 7) % 5) as f64))
            .collect();
        // Direct circular convolution.
        let mut direct = vec![Complex::ZERO; rows * cols];
        for y in 0..rows {
            for x in 0..cols {
                let mut acc = Complex::ZERO;
                for v in 0..rows {
                    for u in 0..cols {
                        let yy = (y + rows - v) % rows;
                        let xx = (x + cols - u) % cols;
                        acc = acc.mul_add(a[v * cols + u], b[yy * cols + xx]);
                    }
                }
                direct[y * cols + x] = acc;
            }
        }
        // Frequency-domain product.
        let fft = Fft2d::new(rows, cols).unwrap();
        let mut fa = a;
        let mut fb = b;
        fft.forward(&mut fa).unwrap();
        fft.forward(&mut fb).unwrap();
        let mut prod: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| *x * *y).collect();
        fft.inverse(&mut prod).unwrap();
        assert!(max_err(&prod, &direct) < 1e-9);
    }

    #[test]
    fn pooled_transform_is_bit_identical_to_serial() {
        for (rows, cols) in [(64usize, 64usize), (16, 64)] {
            let fft = Fft2d::new(rows, cols).unwrap();
            let data = ramp(rows, cols);
            let pool = InnerPool::new(4);
            let mut serial = data.clone();
            let mut pooled = data;
            fft.forward(&mut serial).unwrap();
            fft.forward_with_pool(&mut pooled, &pool).unwrap();
            assert_eq!(serial, pooled, "{rows}x{cols} forward");
            fft.inverse(&mut serial).unwrap();
            fft.inverse_with_pool(&mut pooled, &pool).unwrap();
            assert_eq!(serial, pooled, "{rows}x{cols} inverse");
        }
    }

    #[test]
    fn sparse_support_matches_dense_inverse() {
        // A spectrum nonzero only on a few wrapped rows: the sparse entry
        // point must agree with the dense inverse bit for bit.
        let n = 32;
        let support = [30usize, 31, 0, 1, 2]; // wrapped centered support
        let fft = Fft2d::new(n, n).unwrap();
        let mut dense = vec![Complex::ZERO; n * n];
        for &r in &support {
            for c in 0..n {
                dense[r * n + c] = Complex::new((r as f64 * 0.31 + c as f64).sin(), c as f64 * 0.1);
            }
        }
        let mut sparse = dense.clone();
        fft.inverse(&mut dense).unwrap();
        fft.inverse_support(&mut sparse, &support).unwrap();
        assert_eq!(dense, sparse);
    }

    #[test]
    fn sparse_support_rejects_out_of_range_rows() {
        let fft = Fft2d::new(8, 8).unwrap();
        let mut data = vec![Complex::ZERO; 64];
        assert!(matches!(
            fft.inverse_support(&mut data, &[8]),
            Err(FftError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn transpose_square_roundtrip() {
        for n in [1usize, 2, 31, 32, 33, 64] {
            for block in [8usize, 32, 64] {
                let data: Vec<Complex> = (0..n * n).map(|i| Complex::from_re(i as f64)).collect();
                let mut t = data.clone();
                transpose_square_block(&mut t, n, block);
                for i in 0..n {
                    for j in 0..n {
                        assert_eq!(t[j * n + i], data[i * n + j]);
                    }
                }
                transpose_square_block(&mut t, n, block);
                assert_eq!(t, data);
            }
        }
    }

    #[test]
    fn transpose_scaled_scales_every_element_once() {
        let n = 33; // exercises partial blocks and the diagonal
        let data: Vec<Complex> = (0..n * n)
            .map(|i| Complex::from_re(i as f64 + 1.0))
            .collect();
        let mut t = data.clone();
        transpose_square_scaled(&mut t, n, Some(0.5), 32);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(t[j * n + i], data[i * n + j].scale(0.5));
            }
        }
    }

    #[test]
    fn forward_support_matches_dense_forward_on_kept_columns() {
        let n = 32;
        let support = [30usize, 31, 0, 1, 2]; // wrapped centered support
        let fft = Fft2d::new(n, n).unwrap();
        let data = ramp(n, n);
        let mut dense = data.clone();
        fft.forward(&mut dense).unwrap();
        for pool in [InnerPool::serial(), InnerPool::new(4)] {
            let mut sparse = data.clone();
            fft.forward_support_transposed(&mut sparse, &support, &pool)
                .unwrap();
            for &c in &support {
                for r in 0..n {
                    assert_eq!(sparse[c * n + r], dense[r * n + c], "bin ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn forward_support_rejects_bad_inputs() {
        let fft = Fft2d::new(8, 8).unwrap();
        let mut data = vec![Complex::ZERO; 64];
        assert!(matches!(
            fft.forward_support_transposed(&mut data, &[8], &InnerPool::serial()),
            Err(FftError::LengthMismatch { .. })
        ));
        let rect = Fft2d::new(8, 4).unwrap();
        let mut rdata = vec![Complex::ZERO; 32];
        assert!(matches!(
            rect.forward_support_transposed(&mut rdata, &[0], &InnerPool::serial()),
            Err(FftError::ShapeMismatch { .. })
        ));
    }
}

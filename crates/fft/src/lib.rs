//! # ilt-fft
//!
//! Power-of-two complex FFTs and spectral utilities for the
//! multigrid-Schwarz ILT workspace.
//!
//! The lithography forward model (Hopkins, Eq. (1)–(2) of the paper) is a sum
//! of squared convolutions evaluated in the frequency domain; every ILT
//! iteration performs a handful of 2-D FFTs. This crate provides:
//!
//! * [`Complex`] — a small `f64` complex number;
//! * [`FftPlan`] / [`Fft2d`] — reusable radix-2 plans for 1-D and 2-D
//!   transforms;
//! * [`spectral`] — layout conversions (`fftshift`), the low-frequency crop
//!   `[.]_P` and its adjoint, and the fractional-frequency kernel resampling
//!   `H_i(j/s, k/s)` required by the paper's Eq. (3) and Eq. (9);
//! * [`dft_reference`] / [`dft2_reference`] — `O(n^2)` oracles for testing.
//!
//! # Examples
//!
//! Band-limit an image exactly as the projection optics does:
//!
//! ```
//! use ilt_fft::{spectral, Complex, Fft2d};
//!
//! # fn main() -> Result<(), ilt_fft::FftError> {
//! let n = 16;
//! let fft = Fft2d::new(n, n)?;
//! let mut img = vec![Complex::ONE; n * n];
//! fft.forward(&mut img)?;
//! let low = spectral::crop_lowfreq(&img, n, 4)?;      // [.]_P with P = 4
//! let mut out = spectral::embed_lowfreq(&low, 4, n)?; // zero-fill the rest
//! fft.inverse(&mut out)?;
//! assert!((out[0].re - 1.0).abs() < 1e-12); // DC image survives unchanged
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod complex;
mod dft;
mod error;
mod fft2d;
mod plan;
mod rfft;
#[allow(unsafe_code)]
mod simd;
pub mod spectral;

pub use cache::{
    cached_plan_bytes, cached_plan_count, shared_plan, shared_rplan, tuned_params, tuned_summary,
    TunedParams,
};
pub use complex::Complex;
pub use dft::{dft2_reference, dft_reference};
pub use error::FftError;
pub use fft2d::Fft2d;
pub use plan::{Direction, FftPlan};
pub use rfft::{Rfft2d, RfftPlan};

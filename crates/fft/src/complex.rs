//! Minimal double-precision complex number used throughout the workspace.
//!
//! The lithography pipeline only needs a small, predictable subset of complex
//! arithmetic (add/sub/mul, conjugation, modulus), so we implement it here
//! rather than pulling in an external numerics crate.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use ilt_fft::Complex;
///
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!(a + b, Complex::new(4.0, 1.0));
/// assert_eq!(a * Complex::I, Complex::new(-2.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    ///
    /// ```
    /// # use ilt_fft::Complex;
    /// assert_eq!(Complex::from_re(2.5), Complex::new(2.5, 0.0));
    /// ```
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates the unit-modulus complex number `e^{i theta}`.
    ///
    /// ```
    /// # use ilt_fft::Complex;
    /// let z = Complex::from_polar(1.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-15 && (z.im - 1.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|^2 = re^2 + im^2`.
    ///
    /// This is the quantity the Hopkins model sums over kernels in Eq. (1) of
    /// the paper, so it is provided directly to avoid a needless square root.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Fused multiply-accumulate: `self + a * b`.
    ///
    /// The FFT butterflies and TCC assembly are dominated by this pattern.
    #[inline]
    pub fn mul_add(self, a: Complex, b: Complex) -> Self {
        Complex {
            re: self.re + a.re * b.re - a.im * b.im,
            im: self.im + a.re * b.im + a.im * b.re,
        }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < EPS
    }

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex::ZERO, Complex::new(0.0, 0.0));
        assert_eq!(Complex::ONE, Complex::new(1.0, 0.0));
        assert_eq!(Complex::I, Complex::new(0.0, 1.0));
        assert_eq!(Complex::from_re(3.0), Complex::new(3.0, 0.0));
        assert_eq!(Complex::from(2.0), Complex::new(2.0, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.5, 4.0);
        assert!(close(a + b - b, a));
        assert!(close(a * b / b, a));
        assert!(close(-(-a), a));
        assert!(close(a * Complex::ONE, a));
        assert!(close(a + Complex::ZERO, a));
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(4.0, -5.0);
        // (2+3i)(4-5i) = 8 -10i +12i +15 = 23 + 2i
        assert!(close(a * b, Complex::new(23.0, 2.0)));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex::I * Complex::I, -Complex::ONE));
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert!(close((a * b).conj(), a.conj() * b.conj()));
        assert!((a * a.conj()).im.abs() < EPS);
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < EPS);
    }

    #[test]
    fn norm_and_abs() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
        assert!((z.abs() - 5.0).abs() < EPS);
    }

    #[test]
    fn assign_operators() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::ONE;
        assert!(close(z, Complex::new(2.0, 1.0)));
        z -= Complex::I;
        assert!(close(z, Complex::new(2.0, 0.0)));
        z *= Complex::I;
        assert!(close(z, Complex::new(0.0, 2.0)));
        z /= Complex::new(0.0, 2.0);
        assert!(close(z, Complex::ONE));
    }

    #[test]
    fn scalar_ops() {
        let z = Complex::new(1.0, -2.0);
        assert!(close(z * 2.0, Complex::new(2.0, -4.0)));
        assert!(close(2.0 * z, Complex::new(2.0, -4.0)));
        assert!(close(z / 2.0, Complex::new(0.5, -1.0)));
        assert!(close(z.scale(0.5), Complex::new(0.5, -1.0)));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let acc = Complex::new(0.5, 0.5);
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert!(close(acc.mul_add(a, b), acc + a * b));
    }

    #[test]
    fn sum_over_iterator() {
        let v = vec![Complex::ONE, Complex::I, Complex::new(1.0, 1.0)];
        let s: Complex = v.into_iter().sum();
        assert!(close(s, Complex::new(2.0, 2.0)));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn nan_detection() {
        assert!(Complex::new(f64::NAN, 0.0).is_nan());
        assert!(Complex::new(0.0, f64::NAN).is_nan());
        assert!(!Complex::ONE.is_nan());
    }
}

//! Error type for FFT planning and execution.

use std::error::Error;
use std::fmt;

/// Errors returned by FFT planning and execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftError {
    /// The requested transform length is not a power of two (or is zero).
    NonPowerOfTwo {
        /// The offending length.
        len: usize,
    },
    /// A buffer passed to a transform does not match the plan length.
    LengthMismatch {
        /// Length the plan was built for.
        expected: usize,
        /// Length of the buffer that was supplied.
        actual: usize,
    },
    /// A 2-D buffer does not match the planned `rows x cols` shape.
    ShapeMismatch {
        /// Expected number of elements (`rows * cols`).
        expected: usize,
        /// Number of elements supplied.
        actual: usize,
    },
    /// A spectral crop/embed was requested with an output size larger than
    /// the input (or vice versa where the operation forbids it).
    InvalidCrop {
        /// Source edge length.
        from: usize,
        /// Destination edge length.
        to: usize,
    },
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::NonPowerOfTwo { len } => {
                write!(f, "transform length {len} is not a nonzero power of two")
            }
            FftError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match plan length {expected}"
                )
            }
            FftError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer has {actual} elements but the plan expects {expected}"
                )
            }
            FftError::InvalidCrop { from, to } => {
                write!(
                    f,
                    "cannot crop or embed a spectrum from size {from} to size {to}"
                )
            }
        }
    }
}

impl Error for FftError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = FftError::NonPowerOfTwo { len: 12 };
        assert!(e.to_string().contains("12"));
        let e = FftError::LengthMismatch {
            expected: 8,
            actual: 4,
        };
        assert!(e.to_string().contains('8') && e.to_string().contains('4'));
        let e = FftError::ShapeMismatch {
            expected: 64,
            actual: 32,
        };
        assert!(e.to_string().contains("64"));
        let e = FftError::InvalidCrop { from: 4, to: 16 };
        assert!(e.to_string().contains("16"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<FftError>();
    }
}

//! Spectral bookkeeping: centered/unshifted layout conversion, low-frequency
//! crops and embeds, and frequency-domain resampling.
//!
//! The paper's simulation equations mix three spectrum layouts:
//!
//! * **unshifted** — the natural FFT output, DC in the corner `(0, 0)`;
//! * **centered** — DC at `(n/2, n/2)` (what `fftshift` produces), the layout
//!   in which optical kernels are tabulated;
//! * **low-frequency crops** `[.]_P` — the centered `P x P` block around DC,
//!   which is all the projection optics transmits.
//!
//! These helpers convert between them and implement the fractional-index
//! kernel evaluation `H_i(j/s, k/s)` from Eq. (3)/(9) as a bilinear
//! interpolation on the centered grid.

use crate::complex::Complex;
use crate::error::FftError;

/// Maps a signed frequency index `k` (`-n/2 <= k < n/2`) to the unshifted
/// FFT bin in `0..n`.
///
/// # Examples
///
/// ```
/// use ilt_fft::spectral::wrap_index;
///
/// assert_eq!(wrap_index(0, 8), 0);
/// assert_eq!(wrap_index(3, 8), 3);
/// assert_eq!(wrap_index(-1, 8), 7);
/// assert_eq!(wrap_index(-4, 8), 4);
/// ```
#[inline]
pub fn wrap_index(k: i64, n: usize) -> usize {
    let n = n as i64;
    (((k % n) + n) % n) as usize
}

/// Signed frequency index of unshifted bin `i` in an `n`-point spectrum
/// (`0..n/2` stay positive, the upper half maps to negative frequencies).
///
/// ```
/// use ilt_fft::spectral::signed_index;
///
/// assert_eq!(signed_index(0, 8), 0);
/// assert_eq!(signed_index(3, 8), 3);
/// assert_eq!(signed_index(4, 8), -4);
/// assert_eq!(signed_index(7, 8), -1);
/// ```
#[inline]
pub fn signed_index(i: usize, n: usize) -> i64 {
    if i < n.div_ceil(2) {
        i as i64
    } else {
        i as i64 - n as i64
    }
}

/// Moves DC from the corner to the center of a row-major `rows x cols`
/// spectrum (a 2-D `fftshift`). Works for odd and even sizes.
pub fn fftshift2(data: &[Complex], rows: usize, cols: usize) -> Vec<Complex> {
    assert_eq!(data.len(), rows * cols, "buffer does not match shape");
    let mut out = vec![Complex::ZERO; rows * cols];
    let rshift = rows / 2;
    let cshift = cols / 2;
    for r in 0..rows {
        let nr = (r + rshift) % rows;
        for c in 0..cols {
            let nc = (c + cshift) % cols;
            out[nr * cols + nc] = data[r * cols + c];
        }
    }
    out
}

/// Inverse of [`fftshift2`]: moves a centered DC back to the corner.
pub fn ifftshift2(data: &[Complex], rows: usize, cols: usize) -> Vec<Complex> {
    assert_eq!(data.len(), rows * cols, "buffer does not match shape");
    let mut out = vec![Complex::ZERO; rows * cols];
    let rshift = rows.div_ceil(2);
    let cshift = cols.div_ceil(2);
    for r in 0..rows {
        let nr = (r + rshift) % rows;
        for c in 0..cols {
            let nc = (c + cshift) % cols;
            out[nr * cols + nc] = data[r * cols + c];
        }
    }
    out
}

/// Extracts the centered low-frequency `p x p` block `[.]_p` from an
/// unshifted `n x n` spectrum. The output is **centered** (DC at `p/2, p/2`).
///
/// # Errors
///
/// Returns [`FftError::InvalidCrop`] if `p > n` or `p == 0`.
pub fn crop_lowfreq(spectrum: &[Complex], n: usize, p: usize) -> Result<Vec<Complex>, FftError> {
    if p > n || p == 0 {
        return Err(FftError::InvalidCrop { from: n, to: p });
    }
    if spectrum.len() != n * n {
        return Err(FftError::ShapeMismatch {
            expected: n * n,
            actual: spectrum.len(),
        });
    }
    let half = p as i64 / 2;
    let mut out = vec![Complex::ZERO; p * p];
    for r in 0..p {
        let fr = r as i64 - half;
        let sr = wrap_index(fr, n);
        for c in 0..p {
            let fc = c as i64 - half;
            let sc = wrap_index(fc, n);
            out[r * p + c] = spectrum[sr * n + sc];
        }
    }
    Ok(out)
}

/// Embeds a **centered** `p x p` low-frequency block into an unshifted
/// `n x n` spectrum of zeros (the adjoint of [`crop_lowfreq`]).
///
/// # Errors
///
/// Returns [`FftError::InvalidCrop`] if `p > n` or `p == 0`.
pub fn embed_lowfreq(block: &[Complex], p: usize, n: usize) -> Result<Vec<Complex>, FftError> {
    if p > n || p == 0 {
        return Err(FftError::InvalidCrop { from: p, to: n });
    }
    if block.len() != p * p {
        return Err(FftError::ShapeMismatch {
            expected: p * p,
            actual: block.len(),
        });
    }
    let half = p as i64 / 2;
    let mut out = vec![Complex::ZERO; n * n];
    for r in 0..p {
        let fr = r as i64 - half;
        let sr = wrap_index(fr, n);
        for c in 0..p {
            let fc = c as i64 - half;
            let sc = wrap_index(fc, n);
            out[sr * n + sc] = block[r * p + c];
        }
    }
    Ok(out)
}

/// Evaluates a centered `p x p` spectrum at the fractional indices
/// `(j/s, k/s)` required by Eq. (3)/(9) of the paper, producing a centered
/// `(s*p) x (s*p)` spectrum over the same physical frequency support.
///
/// Values sampled outside the original support are zero (the projection
/// pupil transmits nothing there). `s` must be at least 1.
///
/// # Errors
///
/// Returns [`FftError::ShapeMismatch`] if `block.len() != p * p`.
///
/// # Panics
///
/// Panics if `s == 0`.
pub fn upsample_centered(block: &[Complex], p: usize, s: usize) -> Result<Vec<Complex>, FftError> {
    assert!(s >= 1, "upsampling factor must be at least 1");
    if block.len() != p * p {
        return Err(FftError::ShapeMismatch {
            expected: p * p,
            actual: block.len(),
        });
    }
    if s == 1 {
        return Ok(block.to_vec());
    }
    let q = p * s;
    let src_center = (p / 2) as f64;
    let dst_center = (q / 2) as f64;
    let mut out = vec![Complex::ZERO; q * q];
    for r in 0..q {
        // Fractional source coordinate on the centered p-grid.
        let fr = (r as f64 - dst_center) / s as f64 + src_center;
        for c in 0..q {
            let fc = (c as f64 - dst_center) / s as f64 + src_center;
            out[r * q + c] = bilinear(block, p, fr, fc);
        }
    }
    Ok(out)
}

/// Bilinear interpolation of a centered `p x p` complex grid at fractional
/// coordinates; zero outside the grid.
fn bilinear(block: &[Complex], p: usize, r: f64, c: f64) -> Complex {
    if r < 0.0 || c < 0.0 || r > (p - 1) as f64 || c > (p - 1) as f64 {
        return Complex::ZERO;
    }
    let r0 = r.floor() as usize;
    let c0 = c.floor() as usize;
    let r1 = (r0 + 1).min(p - 1);
    let c1 = (c0 + 1).min(p - 1);
    let dr = r - r0 as f64;
    let dc = c - c0 as f64;
    let f00 = block[r0 * p + c0];
    let f01 = block[r0 * p + c1];
    let f10 = block[r1 * p + c0];
    let f11 = block[r1 * p + c1];
    f00.scale((1.0 - dr) * (1.0 - dc))
        + f01.scale((1.0 - dr) * dc)
        + f10.scale(dr * (1.0 - dc))
        + f11.scale(dr * dc)
}

/// Restricts an unshifted `sn x sn` spectrum to its centered `n x n`
/// low-frequency block (same signed frequency indices, scaled by `1/s^2`),
/// yielding the unshifted `n x n` spectrum of the spatially `s`-downsampled
/// image — the approximation of Eq. (8): for band-limited content,
/// `F_N(M_s)(j,k) ~= F_sN(M)(j,k) / s^2`.
///
/// # Errors
///
/// Returns [`FftError::ShapeMismatch`] if the buffer does not match `sn*sn`,
/// or [`FftError::InvalidCrop`] if `sn` is not divisible by `s`.
pub fn subsample_spectrum(
    spectrum: &[Complex],
    sn: usize,
    s: usize,
) -> Result<Vec<Complex>, FftError> {
    if s == 0 || !sn.is_multiple_of(s) {
        return Err(FftError::InvalidCrop { from: sn, to: s });
    }
    if spectrum.len() != sn * sn {
        return Err(FftError::ShapeMismatch {
            expected: sn * sn,
            actual: spectrum.len(),
        });
    }
    let n = sn / s;
    let mut out = vec![Complex::ZERO; n * n];
    let scale = 1.0 / (s * s) as f64;
    for r in 0..n {
        // Bin r of the coarse grid (pixel pitch s) and bin r of the fine grid
        // carry the same physical frequency signed(r)/(s*n); decimation of a
        // band-limited image keeps exactly that alias.
        let sr = wrap_index(signed_index(r, n), sn);
        for c in 0..n {
            let sc = wrap_index(signed_index(c, n), sn);
            out[r * n + c] = spectrum[sr * sn + sc].scale(scale);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft2d::Fft2d;

    #[test]
    fn wrap_and_signed_are_inverse() {
        for n in [4usize, 5, 8, 9] {
            for i in 0..n {
                assert_eq!(wrap_index(signed_index(i, n), n), i, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn fftshift_roundtrip_even_and_odd() {
        for n in [4usize, 5] {
            let data: Vec<Complex> = (0..n * n).map(|i| Complex::from_re(i as f64)).collect();
            let shifted = fftshift2(&data, n, n);
            let back = ifftshift2(&shifted, n, n);
            assert_eq!(back, data, "n={n}");
        }
    }

    #[test]
    fn fftshift_moves_dc_to_center() {
        let n = 4;
        let mut data = vec![Complex::ZERO; n * n];
        data[0] = Complex::ONE;
        let shifted = fftshift2(&data, n, n);
        assert_eq!(shifted[(n / 2) * n + n / 2], Complex::ONE);
    }

    #[test]
    fn crop_then_embed_preserves_low_frequencies() {
        let n = 8;
        let p = 4;
        let spectrum: Vec<Complex> = (0..n * n)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        let block = crop_lowfreq(&spectrum, n, p).unwrap();
        let embedded = embed_lowfreq(&block, p, n).unwrap();
        // Every in-band bin survives, every out-of-band bin is zero.
        for r in 0..n {
            for c in 0..n {
                let fr = signed_index(r, n);
                let fc = signed_index(c, n);
                let in_band = fr >= -(p as i64) / 2
                    && fr < p as i64 / 2
                    && fc >= -(p as i64) / 2
                    && fc < p as i64 / 2;
                if in_band {
                    assert_eq!(embedded[r * n + c], spectrum[r * n + c]);
                } else {
                    assert_eq!(embedded[r * n + c], Complex::ZERO);
                }
            }
        }
    }

    #[test]
    fn crop_rejects_bad_sizes() {
        let spectrum = vec![Complex::ZERO; 16];
        assert!(crop_lowfreq(&spectrum, 4, 8).is_err());
        assert!(crop_lowfreq(&spectrum, 4, 0).is_err());
        assert!(crop_lowfreq(&spectrum, 5, 2).is_err()); // wrong buffer size
    }

    #[test]
    fn embed_rejects_bad_sizes() {
        let block = vec![Complex::ZERO; 4];
        assert!(embed_lowfreq(&block, 2, 1).is_err());
        assert!(embed_lowfreq(&block, 3, 8).is_err()); // wrong buffer size
    }

    #[test]
    fn lowpass_filtering_via_crop_embed() {
        // Embedding a cropped spectrum and inverting must reproduce a
        // band-limited version of the image; a DC image is fully in-band.
        let n = 8;
        let fft = Fft2d::new(n, n).unwrap();
        let mut img = vec![Complex::ONE; n * n];
        fft.forward(&mut img).unwrap();
        let block = crop_lowfreq(&img, n, 2).unwrap();
        let mut back = embed_lowfreq(&block, 2, n).unwrap();
        fft.inverse(&mut back).unwrap();
        for z in &back {
            assert!((*z - Complex::ONE).abs() < 1e-10);
        }
    }

    #[test]
    fn upsample_identity_for_s1() {
        let block: Vec<Complex> = (0..9).map(|i| Complex::from_re(i as f64)).collect();
        let up = upsample_centered(&block, 3, 1).unwrap();
        assert_eq!(up, block);
    }

    #[test]
    fn upsample_preserves_center_value() {
        let p = 5;
        let mut block = vec![Complex::ZERO; p * p];
        block[(p / 2) * p + p / 2] = Complex::new(2.0, -1.0);
        let s = 2;
        let up = upsample_centered(&block, p, s).unwrap();
        let q = p * s;
        assert_eq!(up.len(), q * q);
        // DC of the upsampled grid must equal DC of the source.
        assert!((up[(q / 2) * q + q / 2] - Complex::new(2.0, -1.0)).abs() < 1e-12);
    }

    #[test]
    fn upsample_interpolates_linearly() {
        // A linear ramp must be reproduced exactly by bilinear interpolation
        // (away from the zero-padded border).
        let p = 5;
        let block: Vec<Complex> = (0..p * p)
            .map(|i| Complex::from_re((i / p) as f64))
            .collect();
        let s = 2;
        let q = p * s;
        let up = upsample_centered(&block, p, s).unwrap();
        // Mid-grid point halfway between source rows 2 and 3.
        let r = q / 2 + 1; // fractional source row 2.5
        let v = up[r * q + q / 2];
        assert!((v.re - 2.5).abs() < 1e-12, "got {v}");
    }

    #[test]
    fn upsample_rejects_wrong_buffer() {
        let block = vec![Complex::ZERO; 8];
        assert!(upsample_centered(&block, 3, 2).is_err());
    }

    #[test]
    fn subsample_matches_spatial_downsampling_for_bandlimited_input() {
        // For an image containing only frequencies below n/(2s), decimating
        // in space and subsampling the spectrum agree exactly.
        let sn = 16;
        let s = 2;
        let n = sn / s;
        let fft_big = Fft2d::new(sn, sn).unwrap();
        let fft_small = Fft2d::new(n, n).unwrap();
        // Band-limited image: single low-frequency cosine.
        let img: Vec<Complex> = (0..sn * sn)
            .map(|i| {
                let (y, x) = (i / sn, i % sn);
                Complex::from_re(
                    (2.0 * std::f64::consts::PI * (x as f64 + 2.0 * y as f64) / sn as f64).cos(),
                )
            })
            .collect();
        let mut big_spec = img.clone();
        fft_big.forward(&mut big_spec).unwrap();
        let sub = subsample_spectrum(&big_spec, sn, s).unwrap();
        // Spatial decimation.
        let mut small: Vec<Complex> = Vec::with_capacity(n * n);
        for y in 0..n {
            for x in 0..n {
                small.push(img[(y * s) * sn + x * s]);
            }
        }
        fft_small.forward(&mut small).unwrap();
        for (a, b) in sub.iter().zip(&small) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn subsample_rejects_bad_factor() {
        let spectrum = vec![Complex::ZERO; 36];
        assert!(subsample_spectrum(&spectrum, 6, 4).is_err());
        assert!(subsample_spectrum(&spectrum, 6, 0).is_err());
        assert!(subsample_spectrum(&spectrum[..10], 6, 2).is_err());
    }
}

//! FFT planning: precomputed twiddle factors and bit-reversal permutations.
//!
//! All transforms in this crate are power-of-two radix-2 Cooley–Tukey. A
//! [`FftPlan`] is created once per length and reused across the many
//! transforms an ILT iteration performs; plan construction is `O(n)` and the
//! transform itself is `O(n log n)`.
//!
//! # Butterfly engineering
//!
//! The transform is built for the autovectorizer and for branch-free inner
//! loops:
//!
//! * Twiddles are stored **stage-major** (each stage's factors contiguous,
//!   walked sequentially) and **per direction** — the inverse table holds the
//!   conjugates, so the hot loop never branches on [`Direction`] or strides
//!   through a shared table.
//! * The first two stages (`w = 1` and `w ∈ {1, ∓i}`) are algebraically
//!   specialized: half the butterflies of a 64-point transform run with no
//!   complex multiply at all.
//! * The remaining stages run pairs of butterflies per iteration over
//!   explicit `[f64; 4]`-shaped lanes (two complex values), which the
//!   autovectorizer lowers to 256-bit vector ops on x86_64.

use crate::complex::Complex;
use crate::error::FftError;

/// Direction of a Fourier transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The forward transform, `X_k = sum_n x_n e^{-2 pi i k n / N}`.
    Forward,
    /// The inverse transform (with `1/N` normalisation applied).
    Inverse,
}

impl Direction {
    /// Sign of the exponent used by this direction.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

/// A reusable plan for power-of-two FFTs of a fixed length.
///
/// The plan stores the bit-reversal permutation and stage-major twiddle
/// tables for **both** directions (the inverse table holds conjugates), so
/// the butterfly loops are branch-free and walk their table sequentially.
///
/// # Examples
///
/// ```
/// use ilt_fft::{Complex, FftPlan};
///
/// # fn main() -> Result<(), ilt_fft::FftError> {
/// let plan = FftPlan::new(8)?;
/// let mut data = vec![Complex::ONE; 8];
/// plan.forward(&mut data)?;
/// // DC bin picks up the sum, every other bin is zero.
/// assert!((data[0].re - 8.0).abs() < 1e-12);
/// assert!(data[1].abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    len: usize,
    /// `rev[i]` is the bit-reversed index of `i` within `log2(len)` bits.
    rev: Vec<u32>,
    /// Stage-major forward twiddles for stages of size `8, 16, .., len`:
    /// the stage of size `s` contributes `s/2` sequential factors
    /// `e^{-2 pi i k / s}`, `k in 0..s/2`. Stages of size 2 and 4 are
    /// specialized in code and store nothing.
    fwd: Vec<Complex>,
    /// Conjugates of `fwd` (the inverse-direction table).
    inv: Vec<Complex>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `len`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NonPowerOfTwo`] unless `len` is a power of two
    /// and at least 1.
    pub fn new(len: usize) -> Result<Self, FftError> {
        if len == 0 || !len.is_power_of_two() {
            return Err(FftError::NonPowerOfTwo { len });
        }
        let bits = len.trailing_zeros();
        let mut rev = vec![0u32; len];
        for (i, r) in rev.iter_mut().enumerate() {
            *r = (i as u32).reverse_bits() >> (32 - bits.max(1));
        }
        if bits == 0 {
            rev[0] = 0;
        }
        // Stage-major tables for stages of size >= 8 (sizes 2 and 4 are
        // specialized in `butterflies`): total `8/2 + 16/2 + .. + len/2`
        // entries, i.e. `len - 4` for `len >= 8`.
        let mut fwd = Vec::new();
        let mut size = 8;
        while size <= len {
            let half = size / 2;
            for k in 0..half {
                let theta = -2.0 * std::f64::consts::PI * k as f64 / size as f64;
                fwd.push(Complex::from_polar(1.0, theta));
            }
            size *= 2;
        }
        let inv = fwd.iter().map(|w| w.conj()).collect();
        Ok(FftPlan { len, rev, fwd, inv })
    }

    /// Transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the plan length is zero (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Estimated resident bytes of this plan's tables (bit-reversal
    /// indices plus both per-direction stage-major twiddle tables). Used by
    /// cache introspection (`/debug/caches`).
    pub fn estimated_bytes(&self) -> u64 {
        (self.rev.len() * std::mem::size_of::<u32>()
            + (self.fwd.len() + self.inv.len()) * std::mem::size_of::<Complex>()) as u64
    }

    /// In-place forward FFT.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len()` differs from the
    /// plan length.
    pub fn forward(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.transform(data, Direction::Forward)
    }

    /// In-place inverse FFT including the `1/N` normalisation, so that
    /// `inverse(forward(x)) == x`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len()` differs from the
    /// plan length.
    pub fn inverse(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.transform(data, Direction::Inverse)?;
        let inv = 1.0 / self.len as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
        Ok(())
    }

    /// In-place transform without any normalisation.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len()` differs from the
    /// plan length.
    pub fn transform(&self, data: &mut [Complex], dir: Direction) -> Result<(), FftError> {
        if data.len() != self.len {
            return Err(FftError::LengthMismatch {
                expected: self.len,
                actual: data.len(),
            });
        }
        if self.len == 1 {
            return Ok(());
        }
        // Bit-reversal permutation.
        for i in 0..self.len {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        self.butterflies(data, dir);
        Ok(())
    }

    /// The iterative butterfly passes over bit-reversed data. One code path
    /// per direction regardless of caller, so every transform of the same
    /// buffer is bit-identical no matter how it is batched or pooled.
    fn butterflies(&self, data: &mut [Complex], dir: Direction) {
        let n = self.len;
        // Stages 1 and 2 fused: no twiddle loads at all. Stage 1 is
        // `w = 1`; stage 2 is `w in {1, -i}` (forward) / `{1, i}`
        // (inverse), and multiplying by `∓i` is an exact component swap.
        if n == 2 {
            let (a, b) = (data[0], data[1]);
            data[0] = a + b;
            data[1] = a - b;
            return;
        }
        let flip = match dir {
            Direction::Forward => 1.0,
            Direction::Inverse => -1.0,
        };
        for q in data.chunks_exact_mut(4) {
            let s0 = q[0] + q[1];
            let d0 = q[0] - q[1];
            let s1 = q[2] + q[3];
            let d1 = q[2] - q[3];
            // t = ∓i * d1, exactly.
            let t = Complex::new(flip * d1.im, -flip * d1.re);
            q[0] = s0 + s1;
            q[2] = s0 - s1;
            q[1] = d0 + t;
            q[3] = d0 - t;
        }
        // Remaining stages: branch-free, sequential stage-major twiddles.
        let table = match dir {
            Direction::Forward => &self.fwd,
            Direction::Inverse => &self.inv,
        };
        let block = butterfly_dispatch();
        let mut tw_off = 0;
        let mut size = 8;
        while size <= n {
            let half = size / 2;
            let tw = &table[tw_off..tw_off + half];
            tw_off += half;
            let mut base = 0;
            while base < n {
                let (lo, hi) = data[base..base + size].split_at_mut(half);
                block(lo, hi, tw);
                base += size;
            }
            size *= 2;
        }
    }
}

/// Picks the butterfly-block kernel for this process: the AVX2+FMA
/// [`crate::simd`] kernel when the CPU supports it, the portable
/// autovectorized block otherwise. The choice is a pure function of the
/// host CPU, so every transform in a process takes the same path.
fn butterfly_dispatch() -> fn(&mut [Complex], &mut [Complex], &[Complex]) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::simd::butterfly_kernel_available() {
            return crate::simd::butterfly_block_x86;
        }
    }
    butterfly_block
}

/// One butterfly block: `lo[k], hi[k] <- lo[k] + w[k]*hi[k], lo[k] - w[k]*hi[k]`.
///
/// Runs two butterflies per iteration over explicit four-lane `f64` shapes
/// (two complex values), which the autovectorizer turns into 256-bit loads,
/// multiplies and add/sub pairs; `half >= 4` always holds here (the first
/// two stages are specialized away), so the `chunks_exact` remainder is
/// empty.
#[inline]
fn butterfly_block(lo: &mut [Complex], hi: &mut [Complex], tw: &[Complex]) {
    debug_assert_eq!(lo.len(), hi.len());
    debug_assert_eq!(lo.len(), tw.len());
    let lo2 = lo.chunks_exact_mut(2);
    let hi2 = hi.chunks_exact_mut(2);
    let tw2 = tw.chunks_exact(2);
    for ((l, h), w) in lo2.zip(hi2).zip(tw2) {
        // t_j = w_j * h_j for the two lanes, spelled out component-wise so
        // the whole iteration is straight-line f64 arithmetic.
        let t0re = w[0].re * h[0].re - w[0].im * h[0].im;
        let t0im = w[0].re * h[0].im + w[0].im * h[0].re;
        let t1re = w[1].re * h[1].re - w[1].im * h[1].im;
        let t1im = w[1].re * h[1].im + w[1].im * h[1].re;
        let u0 = l[0];
        let u1 = l[1];
        l[0] = Complex::new(u0.re + t0re, u0.im + t0im);
        h[0] = Complex::new(u0.re - t0re, u0.im - t0im);
        l[1] = Complex::new(u1.re + t1re, u1.im + t1im);
        h[1] = Complex::new(u1.re - t1re, u1.im - t1im);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_reference;

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            FftPlan::new(12),
            Err(FftError::NonPowerOfTwo { len: 12 })
        ));
        assert!(matches!(
            FftPlan::new(0),
            Err(FftError::NonPowerOfTwo { len: 0 })
        ));
    }

    #[test]
    fn rejects_length_mismatch() {
        let plan = FftPlan::new(8).unwrap();
        let mut data = vec![Complex::ZERO; 4];
        assert!(matches!(
            plan.forward(&mut data),
            Err(FftError::LengthMismatch {
                expected: 8,
                actual: 4
            })
        ));
    }

    #[test]
    fn length_one_is_identity() {
        let plan = FftPlan::new(1).unwrap();
        let mut data = vec![Complex::new(3.0, -2.0)];
        plan.forward(&mut data).unwrap();
        assert_eq!(data[0], Complex::new(3.0, -2.0));
        plan.inverse(&mut data).unwrap();
        assert_eq!(data[0], Complex::new(3.0, -2.0));
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let plan = FftPlan::new(16).unwrap();
        let mut data = vec![Complex::ZERO; 16];
        data[0] = Complex::ONE;
        plan.forward(&mut data).unwrap();
        for z in &data {
            assert!((*z - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn shifted_impulse_has_linear_phase() {
        let n = 8;
        let plan = FftPlan::new(n).unwrap();
        let mut data = vec![Complex::ZERO; n];
        data[1] = Complex::ONE;
        plan.forward(&mut data).unwrap();
        for (k, z) in data.iter().enumerate() {
            let expect =
                Complex::from_polar(1.0, -2.0 * std::f64::consts::PI * k as f64 / n as f64);
            assert!((*z - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_naive_dft() {
        for n in [2usize, 4, 8, 32, 64] {
            let mut data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let reference = dft_reference(&data, Direction::Forward);
            FftPlan::new(n).unwrap().forward(&mut data).unwrap();
            assert!(max_err(&data, &reference) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn inverse_matches_naive_dft() {
        for n in [2usize, 4, 8, 16, 128] {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.9).cos(), (i as f64 * 0.2).sin()))
                .collect();
            let reference = dft_reference(&data, Direction::Inverse);
            let mut fast = data;
            FftPlan::new(n).unwrap().inverse(&mut fast).unwrap();
            assert!(max_err(&fast, &reference) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let n = 128;
        let plan = FftPlan::new(n).unwrap();
        let original: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.1).cos()))
            .collect();
        let mut data = original.clone();
        plan.forward(&mut data).unwrap();
        plan.inverse(&mut data).unwrap();
        assert!(max_err(&data, &original) < 1e-10);
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 64;
        let plan = FftPlan::new(n).unwrap();
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.3).cos(), (i as f64 * 0.9).sin()))
            .collect();
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = data;
        plan.forward(&mut freq).unwrap();
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let plan = FftPlan::new(n).unwrap();
        let a: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.5)).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(1.0, -(i as f64))).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fsum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        plan.forward(&mut fa).unwrap();
        plan.forward(&mut fb).unwrap();
        plan.forward(&mut fsum).unwrap();
        let combined: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&fsum, &combined) < 1e-9);
    }

    #[test]
    fn real_input_spectrum_is_conjugate_symmetric() {
        let n = 16;
        let plan = FftPlan::new(n).unwrap();
        let mut data: Vec<Complex> = (0..n)
            .map(|i| Complex::from_re((i as f64 * 0.37).sin()))
            .collect();
        plan.forward(&mut data).unwrap();
        for k in 1..n {
            assert!((data[k] - data[n - k].conj()).abs() < 1e-10);
        }
    }

    #[test]
    fn direction_signs() {
        assert_eq!(Direction::Forward.sign(), -1.0);
        assert_eq!(Direction::Inverse.sign(), 1.0);
    }
}

//! FFT planning: precomputed twiddle factors and bit-reversal permutations.
//!
//! All transforms in this crate are power-of-two radix-2 Cooley–Tukey. A
//! [`FftPlan`] is created once per length and reused across the many
//! transforms an ILT iteration performs; plan construction is `O(n)` and the
//! transform itself is `O(n log n)`.

use crate::complex::Complex;
use crate::error::FftError;

/// Direction of a Fourier transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The forward transform, `X_k = sum_n x_n e^{-2 pi i k n / N}`.
    Forward,
    /// The inverse transform (with `1/N` normalisation applied).
    Inverse,
}

impl Direction {
    /// Sign of the exponent used by this direction.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

/// A reusable plan for power-of-two FFTs of a fixed length.
///
/// The plan stores the bit-reversal permutation and the twiddle factors for
/// the forward direction; inverse transforms conjugate on the fly.
///
/// # Examples
///
/// ```
/// use ilt_fft::{Complex, FftPlan};
///
/// # fn main() -> Result<(), ilt_fft::FftError> {
/// let plan = FftPlan::new(8)?;
/// let mut data = vec![Complex::ONE; 8];
/// plan.forward(&mut data)?;
/// // DC bin picks up the sum, every other bin is zero.
/// assert!((data[0].re - 8.0).abs() < 1e-12);
/// assert!(data[1].abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    len: usize,
    /// `rev[i]` is the bit-reversed index of `i` within `log2(len)` bits.
    rev: Vec<u32>,
    /// Twiddles `e^{-2 pi i k / len}` for `k in 0..len/2` (forward direction).
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `len`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NonPowerOfTwo`] unless `len` is a power of two
    /// and at least 1.
    pub fn new(len: usize) -> Result<Self, FftError> {
        if len == 0 || !len.is_power_of_two() {
            return Err(FftError::NonPowerOfTwo { len });
        }
        let bits = len.trailing_zeros();
        let mut rev = vec![0u32; len];
        for (i, r) in rev.iter_mut().enumerate() {
            *r = (i as u32).reverse_bits() >> (32 - bits.max(1));
        }
        if bits == 0 {
            rev[0] = 0;
        }
        let half = (len / 2).max(1);
        let mut twiddles = Vec::with_capacity(half);
        for k in 0..half {
            let theta = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
            twiddles.push(Complex::from_polar(1.0, theta));
        }
        Ok(FftPlan { len, rev, twiddles })
    }

    /// Transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the plan length is zero (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Estimated resident bytes of this plan's tables (bit-reversal
    /// indices + twiddle factors). Used by cache introspection
    /// (`/debug/caches`).
    pub fn estimated_bytes(&self) -> u64 {
        (self.rev.len() * std::mem::size_of::<u32>()
            + self.twiddles.len() * std::mem::size_of::<Complex>()) as u64
    }

    /// In-place forward FFT.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len()` differs from the
    /// plan length.
    pub fn forward(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.transform(data, Direction::Forward)
    }

    /// In-place inverse FFT including the `1/N` normalisation, so that
    /// `inverse(forward(x)) == x`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len()` differs from the
    /// plan length.
    pub fn inverse(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.transform(data, Direction::Inverse)?;
        let inv = 1.0 / self.len as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
        Ok(())
    }

    /// In-place transform without any normalisation.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len()` differs from the
    /// plan length.
    pub fn transform(&self, data: &mut [Complex], dir: Direction) -> Result<(), FftError> {
        if data.len() != self.len {
            return Err(FftError::LengthMismatch {
                expected: self.len,
                actual: data.len(),
            });
        }
        if self.len == 1 {
            return Ok(());
        }
        // Bit-reversal permutation.
        for i in 0..self.len {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Iterative radix-2 butterflies.
        let conj = matches!(dir, Direction::Inverse);
        let mut size = 2;
        while size <= self.len {
            let half = size / 2;
            let step = self.len / size;
            let mut base = 0;
            while base < self.len {
                let mut k = 0;
                for j in base..base + half {
                    let mut w = self.twiddles[k];
                    if conj {
                        w = w.conj();
                    }
                    let t = w * data[j + half];
                    let u = data[j];
                    data[j] = u + t;
                    data[j + half] = u - t;
                    k += step;
                }
                base += size;
            }
            size *= 2;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_reference;

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            FftPlan::new(12),
            Err(FftError::NonPowerOfTwo { len: 12 })
        ));
        assert!(matches!(
            FftPlan::new(0),
            Err(FftError::NonPowerOfTwo { len: 0 })
        ));
    }

    #[test]
    fn rejects_length_mismatch() {
        let plan = FftPlan::new(8).unwrap();
        let mut data = vec![Complex::ZERO; 4];
        assert!(matches!(
            plan.forward(&mut data),
            Err(FftError::LengthMismatch {
                expected: 8,
                actual: 4
            })
        ));
    }

    #[test]
    fn length_one_is_identity() {
        let plan = FftPlan::new(1).unwrap();
        let mut data = vec![Complex::new(3.0, -2.0)];
        plan.forward(&mut data).unwrap();
        assert_eq!(data[0], Complex::new(3.0, -2.0));
        plan.inverse(&mut data).unwrap();
        assert_eq!(data[0], Complex::new(3.0, -2.0));
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let plan = FftPlan::new(16).unwrap();
        let mut data = vec![Complex::ZERO; 16];
        data[0] = Complex::ONE;
        plan.forward(&mut data).unwrap();
        for z in &data {
            assert!((*z - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn shifted_impulse_has_linear_phase() {
        let n = 8;
        let plan = FftPlan::new(n).unwrap();
        let mut data = vec![Complex::ZERO; n];
        data[1] = Complex::ONE;
        plan.forward(&mut data).unwrap();
        for (k, z) in data.iter().enumerate() {
            let expect =
                Complex::from_polar(1.0, -2.0 * std::f64::consts::PI * k as f64 / n as f64);
            assert!((*z - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_naive_dft() {
        for n in [2usize, 4, 8, 32, 64] {
            let mut data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let reference = dft_reference(&data, Direction::Forward);
            FftPlan::new(n).unwrap().forward(&mut data).unwrap();
            assert!(max_err(&data, &reference) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let n = 128;
        let plan = FftPlan::new(n).unwrap();
        let original: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.1).cos()))
            .collect();
        let mut data = original.clone();
        plan.forward(&mut data).unwrap();
        plan.inverse(&mut data).unwrap();
        assert!(max_err(&data, &original) < 1e-10);
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 64;
        let plan = FftPlan::new(n).unwrap();
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.3).cos(), (i as f64 * 0.9).sin()))
            .collect();
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = data;
        plan.forward(&mut freq).unwrap();
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let plan = FftPlan::new(n).unwrap();
        let a: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.5)).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(1.0, -(i as f64))).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fsum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        plan.forward(&mut fa).unwrap();
        plan.forward(&mut fb).unwrap();
        plan.forward(&mut fsum).unwrap();
        let combined: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&fsum, &combined) < 1e-9);
    }

    #[test]
    fn real_input_spectrum_is_conjugate_symmetric() {
        let n = 16;
        let plan = FftPlan::new(n).unwrap();
        let mut data: Vec<Complex> = (0..n)
            .map(|i| Complex::from_re((i as f64 * 0.37).sin()))
            .collect();
        plan.forward(&mut data).unwrap();
        for k in 1..n {
            assert!((data[k] - data[n - k].conj()).abs() < 1e-10);
        }
    }

    #[test]
    fn direction_signs() {
        assert_eq!(Direction::Forward.sign(), -1.0);
        assert_eq!(Direction::Inverse.sign(), 1.0);
    }
}

//! A process-wide plan cache: one [`FftPlan`] / [`RfftPlan`] per transform
//! length, shared behind an `Arc`, plus autotuned layout parameters.
//!
//! Plan construction is cheap (`O(n)`), but the workspace creates one
//! [`crate::Fft2d`] per simulator and a long-lived service creates
//! simulators per job — without sharing, every job would rebuild identical
//! twiddle tables. The caches are keyed by length only (plans are
//! direction-agnostic), live behind `OnceLock<Mutex<...>>`, and hand
//! out `Arc` clones, so a hit is one lock acquisition and one refcount
//! bump. Hits and misses feed the `fft.plan_cache.hit` / `.miss`
//! telemetry counters.
//!
//! ## Autotuning
//!
//! The 2-D transforms have two tunable layout knobs that matter on real
//! machines but have no effect on the computed values: the blocked
//! transpose tile edge and the number of rows handed to a pool worker per
//! work item. [`tuned_params`] measures the candidates once per
//! `(size, thread budget)` pair at first use and persists the winner here,
//! next to the plans it tunes for. Escape hatches:
//!
//! * `ILT_FFT_AUTOTUNE=0` — skip measurement, use the fixed defaults;
//! * `ILT_FFT_BLOCK=<n>` — pin the transpose tile edge (still autotunes
//!   the row batch).
//!
//! Because the knobs only change *iteration order of data movement* and
//! *which worker runs which row*, any tuning outcome preserves the
//! bit-identity guarantees of the transforms.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::complex::Complex;
use crate::error::FftError;
use crate::fft2d::{transpose_square_block, DEFAULT_ROW_BATCH, DEFAULT_TRANSPOSE_BLOCK};
use crate::plan::{Direction, FftPlan};
use crate::rfft::RfftPlan;

static PLANS: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();
static RPLANS: OnceLock<Mutex<HashMap<usize, Arc<RfftPlan>>>> = OnceLock::new();
static TUNED: OnceLock<Mutex<HashMap<(usize, usize), TunedParams>>> = OnceLock::new();

/// Returns the shared plan for transforms of length `len`, building it on
/// first use.
///
/// # Errors
///
/// Returns [`FftError::NonPowerOfTwo`] for invalid lengths (never cached).
pub fn shared_plan(len: usize) -> Result<Arc<FftPlan>, FftError> {
    let cache = PLANS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(plan) = map.get(&len) {
        ilt_telemetry::counter_add("fft.plan_cache.hit", 1);
        return Ok(Arc::clone(plan));
    }
    // Build while holding the lock: construction is O(n) and racing
    // builders would waste more than they save.
    let plan = Arc::new(FftPlan::new(len)?);
    map.insert(len, Arc::clone(&plan));
    ilt_telemetry::counter_add("fft.plan_cache.miss", 1);
    Ok(plan)
}

/// Returns the shared real-input plan for transforms of real length `len`,
/// building it on first use. The embedded half-length complex plan comes
/// from [`shared_plan`], so the twiddle tables are shared with any complex
/// transforms of the same length.
///
/// # Errors
///
/// Returns [`FftError::NonPowerOfTwo`] for lengths that are not a power of
/// two of at least 2 (never cached).
pub fn shared_rplan(len: usize) -> Result<Arc<RfftPlan>, FftError> {
    let cache = RPLANS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(plan) = map.get(&len) {
        ilt_telemetry::counter_add("fft.plan_cache.hit", 1);
        return Ok(Arc::clone(plan));
    }
    let plan = Arc::new(RfftPlan::new(len)?);
    map.insert(len, Arc::clone(&plan));
    ilt_telemetry::counter_add("fft.plan_cache.miss", 1);
    Ok(plan)
}

/// Number of distinct plans currently cached across both the complex and
/// real caches (diagnostics only).
pub fn cached_plan_count() -> usize {
    let complex = PLANS
        .get()
        .map(|c| c.lock().unwrap_or_else(|e| e.into_inner()).len())
        .unwrap_or(0);
    let real = RPLANS
        .get()
        .map(|c| c.lock().unwrap_or_else(|e| e.into_inner()).len())
        .unwrap_or(0);
    complex + real
}

/// Estimated resident bytes of all cached plans: the complex plans' full
/// tables plus the real plans' post-processing tables. A real plan's
/// embedded half-length complex plan lives in the complex cache, so it is
/// counted exactly once. Diagnostics only (`/debug/caches`).
pub fn cached_plan_bytes() -> u64 {
    let complex: u64 = PLANS
        .get()
        .map(|c| {
            c.lock()
                .unwrap_or_else(|e| e.into_inner())
                .values()
                .map(|plan| plan.estimated_bytes())
                .sum()
        })
        .unwrap_or(0);
    let real: u64 = RPLANS
        .get()
        .map(|c| {
            c.lock()
                .unwrap_or_else(|e| e.into_inner())
                .values()
                .map(|plan| plan.estimated_bytes())
                .sum()
        })
        .unwrap_or(0);
    complex + real
}

/// Layout parameters tuned per `(transform size, inner-thread budget)`.
///
/// Both knobs affect only memory traffic and work distribution, never the
/// arithmetic, so any value yields bit-identical transform results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunedParams {
    /// Edge length of the blocked-transpose tiles.
    pub block: usize,
    /// Rows per pooled work item in batched 1-D row passes.
    pub row_batch: usize,
}

impl Default for TunedParams {
    fn default() -> Self {
        TunedParams {
            block: DEFAULT_TRANSPOSE_BLOCK,
            row_batch: DEFAULT_ROW_BATCH,
        }
    }
}

fn autotune_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("ILT_FFT_AUTOTUNE")
            .map(|v| v.trim() != "0")
            .unwrap_or(true)
    })
}

fn pinned_block() -> Option<usize> {
    static PINNED: OnceLock<Option<usize>> = OnceLock::new();
    *PINNED.get_or_init(|| {
        let raw = std::env::var("ILT_FFT_BLOCK").ok()?;
        match raw.trim().parse::<usize>() {
            Ok(v) if v > 0 => Some(v),
            _ => {
                eprintln!("warning: invalid ILT_FFT_BLOCK={raw:?}; autotuning instead");
                None
            }
        }
    })
}

/// Returns the tuned layout parameters for square `n x n` transforms under
/// an inner-thread budget of `threads`, measuring the candidates on first
/// use and persisting the winner for the life of the process.
///
/// With `ILT_FFT_AUTOTUNE=0` the fixed defaults are returned (and cached)
/// without measurement; `ILT_FFT_BLOCK=<edge>` pins the transpose tile
/// edge. Each actual measurement bumps the `fft.autotune.runs` counter.
pub fn tuned_params(n: usize, threads: usize) -> TunedParams {
    let key = (n, threads.max(1));
    let cache = TUNED.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(p) = cache.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
        return *p;
    }
    // Measure without holding the lock: autotuning runs transforms, and a
    // worker thread doing the same could otherwise deadlock on re-entry.
    let params = measure_params(n, key.1);
    cache
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(key, params);
    params
}

/// Snapshot of every tuned `(size, threads) -> params` entry, sorted, for
/// report emission.
pub fn tuned_summary() -> Vec<(usize, usize, TunedParams)> {
    let mut out: Vec<(usize, usize, TunedParams)> = TUNED
        .get()
        .map(|c| {
            c.lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(&(n, t), &p)| (n, t, p))
                .collect()
        })
        .unwrap_or_default();
    out.sort_unstable_by_key(|&(n, t, _)| (n, t));
    out
}

fn measure_params(n: usize, threads: usize) -> TunedParams {
    let mut params = TunedParams::default();
    if !autotune_enabled() || n < 2 {
        if let Some(b) = pinned_block() {
            params.block = b;
        }
        return params;
    }
    ilt_telemetry::counter_add("fft.autotune.runs", 1);
    let mut buf: Vec<Complex> = (0..n * n)
        .map(|i| Complex::new(i as f64 * 0.37, i as f64 * 0.11))
        .collect();
    params.block = match pinned_block() {
        Some(b) => b,
        None => {
            let mut best = (f64::INFINITY, params.block);
            for cand in [16usize, 32, 64] {
                let cand = cand.min(n);
                // One warmup sweep, then best-of-3 timed sweeps.
                transpose_square_block(&mut buf, n, cand);
                let mut fastest = f64::INFINITY;
                for _ in 0..3 {
                    let t0 = Instant::now();
                    transpose_square_block(&mut buf, n, cand);
                    fastest = fastest.min(t0.elapsed().as_secs_f64());
                }
                if fastest < best.0 {
                    best = (fastest, cand);
                }
                if cand == n {
                    break;
                }
            }
            best.1
        }
    };
    // Row batching only matters when a pool actually splits the rows.
    if threads > 1 {
        if let Ok(plan) = shared_plan(n) {
            let pool = ilt_par::InnerPool::new(threads);
            let mut best = (f64::INFINITY, params.row_batch);
            for cand in [1usize, 2, 4] {
                if cand > n {
                    break;
                }
                let run = |data: &mut [Complex]| {
                    pool.for_each_chunk_mut(data, n * cand, |_, rows| {
                        for row in rows.chunks_exact_mut(n) {
                            plan.transform(row, Direction::Forward)
                                .expect("row length matches plan by construction");
                        }
                    });
                };
                run(&mut buf); // warmup
                let mut fastest = f64::INFINITY;
                for _ in 0..3 {
                    let t0 = Instant::now();
                    run(&mut buf);
                    fastest = fastest.min(t0.elapsed().as_secs_f64());
                }
                if fastest < best.0 {
                    best = (fastest, cand);
                }
            }
            params.row_batch = best.1;
        }
    }
    params
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_length_shares_one_plan() {
        let a = shared_plan(64).unwrap();
        let b = shared_plan(64).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 64);
        assert!(cached_plan_count() >= 1);
        // rev: 64 u32s; stage-major twiddles: (64 - 4) complex values per direction.
        assert_eq!(a.estimated_bytes(), 64 * 4 + 2 * (64 - 4) * 16);
        assert!(cached_plan_bytes() >= a.estimated_bytes());
    }

    #[test]
    fn same_length_shares_one_rplan() {
        let a = shared_rplan(64).unwrap();
        let b = shared_rplan(64).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 64);
        // The rplan's own tables (not the shared half plan) are counted.
        assert!(cached_plan_bytes() >= a.estimated_bytes());
    }

    #[test]
    fn invalid_lengths_error_and_are_not_cached() {
        assert!(shared_plan(12).is_err());
        assert!(shared_rplan(12).is_err());
        assert!(shared_rplan(1).is_err());
        let before = cached_plan_count();
        assert!(shared_plan(12).is_err());
        assert_eq!(cached_plan_count(), before);
    }

    #[test]
    fn shared_plan_transforms_like_a_fresh_plan() {
        use crate::complex::Complex;
        let shared = shared_plan(32).unwrap();
        let fresh = FftPlan::new(32).unwrap();
        let data: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut a = data.clone();
        let mut b = data;
        shared.forward(&mut a).unwrap();
        fresh.forward(&mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tuned_params_are_cached_and_sane() {
        let a = tuned_params(32, 1);
        let b = tuned_params(32, 1);
        assert_eq!(a, b);
        assert!(a.block >= 1 && a.block <= 64);
        assert!(a.row_batch >= 1);
        assert!(tuned_summary()
            .iter()
            .any(|&(n, t, p)| { n == 32 && t == 1 && p == a }));
    }

    #[test]
    fn tuned_params_with_threads_pick_valid_batch() {
        let p = tuned_params(16, 2);
        assert!(p.row_batch >= 1 && 16 % p.row_batch == 0);
    }
}

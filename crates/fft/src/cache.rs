//! A process-wide plan cache: one [`FftPlan`] per transform length,
//! shared behind an `Arc`.
//!
//! Plan construction is cheap (`O(n)`), but the workspace creates one
//! [`crate::Fft2d`] per simulator and a long-lived service creates
//! simulators per job — without sharing, every job would rebuild identical
//! twiddle tables. The cache is keyed by length only (plans are
//! direction-agnostic), lives behind a `OnceLock<Mutex<...>>`, and hands
//! out `Arc` clones, so a hit is one lock acquisition and one refcount
//! bump. Hits and misses feed the `fft.plan_cache.hit` / `.miss`
//! telemetry counters.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::FftError;
use crate::plan::FftPlan;

static PLANS: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();

/// Returns the shared plan for transforms of length `len`, building it on
/// first use.
///
/// # Errors
///
/// Returns [`FftError::NonPowerOfTwo`] for invalid lengths (never cached).
pub fn shared_plan(len: usize) -> Result<Arc<FftPlan>, FftError> {
    let cache = PLANS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(plan) = map.get(&len) {
        ilt_telemetry::counter_add("fft.plan_cache.hit", 1);
        return Ok(Arc::clone(plan));
    }
    // Build while holding the lock: construction is O(n) and racing
    // builders would waste more than they save.
    let plan = Arc::new(FftPlan::new(len)?);
    map.insert(len, Arc::clone(&plan));
    ilt_telemetry::counter_add("fft.plan_cache.miss", 1);
    Ok(plan)
}

/// Number of distinct lengths currently cached (diagnostics only).
pub fn cached_plan_count() -> usize {
    PLANS
        .get()
        .map(|c| c.lock().unwrap_or_else(|e| e.into_inner()).len())
        .unwrap_or(0)
}

/// Estimated resident bytes of all cached plans (sum of
/// [`FftPlan::estimated_bytes`]; diagnostics only).
pub fn cached_plan_bytes() -> u64 {
    PLANS
        .get()
        .map(|c| {
            c.lock()
                .unwrap_or_else(|e| e.into_inner())
                .values()
                .map(|plan| plan.estimated_bytes())
                .sum()
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_length_shares_one_plan() {
        let a = shared_plan(64).unwrap();
        let b = shared_plan(64).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 64);
        assert!(cached_plan_count() >= 1);
        // rev: 64 u32s; twiddles: 32 complex values.
        assert_eq!(a.estimated_bytes(), 64 * 4 + 32 * 16);
        assert!(cached_plan_bytes() >= a.estimated_bytes());
    }

    #[test]
    fn invalid_lengths_error_and_are_not_cached() {
        assert!(shared_plan(12).is_err());
        let before = cached_plan_count();
        assert!(shared_plan(12).is_err());
        assert_eq!(cached_plan_count(), before);
    }

    #[test]
    fn shared_plan_transforms_like_a_fresh_plan() {
        use crate::complex::Complex;
        let shared = shared_plan(32).unwrap();
        let fresh = FftPlan::new(32).unwrap();
        let data: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut a = data.clone();
        let mut b = data;
        shared.forward(&mut a).unwrap();
        fresh.forward(&mut b).unwrap();
        assert_eq!(a, b);
    }
}

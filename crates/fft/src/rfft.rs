//! Real-input FFTs: half the butterfly work, half the spectrum.
//!
//! Every mask, target, and aerial image in the Hopkins/SOCS pipeline is
//! real-valued, and the spectrum of a real signal is conjugate-symmetric:
//! `X[n-k] = conj(X[k])`. [`RfftPlan`] exploits this by packing the `n`
//! real samples into `n/2` complex values, running a *half-length* complex
//! FFT, and untangling the even/odd interleave with one `O(n)`
//! post-processing pass — the classic "pack two reals per complex" scheme.
//! Only the `n/2 + 1` non-redundant bins are ever materialised.
//!
//! [`Rfft2d`] lifts this to square `n x n` real grids. The half-spectrum
//! is stored **transposed** as `(n/2 + 1) x n`: stored column `c` of the
//! logical spectrum occupies the contiguous run `spec[c*n .. (c+1)*n]`,
//! so the second (column-direction) pass transforms contiguous memory with
//! no transpose-back. Values in the missing half follow from symmetry:
//!
//! ```text
//! X(r, c) = spec[c*n + r]                          for c <= n/2
//! X(r, c) = conj(spec[(n-c)*n + (n-r) % n])        otherwise
//! ```
//!
//! The inverse accepts the same layout, skips all-zero stored columns the
//! caller vouches for (feeding the `fft.rows_skipped` counter exactly like
//! [`crate::Fft2d::inverse_support`]), and fuses an arbitrary extra scale
//! into the final real unpacking, so Hermitian-symmetrised adjoint sums
//! come back as real grids in one pass.

use std::sync::Arc;

use ilt_par::InnerPool;

use crate::cache::{shared_plan, shared_rplan, tuned_params};
use crate::complex::Complex;
use crate::error::FftError;
use crate::fft2d::transpose_into_block;
use crate::plan::{Direction, FftPlan};

/// A reusable real-input FFT plan for one power-of-two length `n >= 2`.
///
/// The forward transform maps `n` reals to the `n/2 + 1` non-redundant
/// spectrum bins; the inverse maps them back. Internally the plan wraps
/// the shared half-length complex [`FftPlan`] plus an `n/4 + 1`-entry
/// post-processing twiddle table, so a real transform costs a complex
/// transform of *half* the length plus one linear pass.
///
/// # Examples
///
/// ```
/// use ilt_fft::{Complex, RfftPlan};
///
/// # fn main() -> Result<(), ilt_fft::FftError> {
/// let plan = RfftPlan::new(8)?;
/// let x = [1.0, 2.0, 0.5, -1.0, 0.0, 3.0, -2.0, 0.25];
/// let mut spec = [Complex::ZERO; 5]; // n/2 + 1 bins
/// plan.forward(&x, &mut spec)?;
/// let mut back = [0.0; 8];
/// plan.inverse(&mut spec, &mut back)?;
/// assert!((back[5] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RfftPlan {
    len: usize,
    /// Shared complex plan of length `len / 2`.
    half: Arc<FftPlan>,
    /// Untangle twiddles `e^{-2 pi i k / len}` for `k in 0..=len/4`.
    post: Vec<Complex>,
}

impl RfftPlan {
    /// Creates a real-input plan for transforms of length `len`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NonPowerOfTwo`] unless `len` is a power of two
    /// of at least 2 (the two-reals-per-complex packing needs an even
    /// length).
    pub fn new(len: usize) -> Result<Self, FftError> {
        if len < 2 || !len.is_power_of_two() {
            return Err(FftError::NonPowerOfTwo { len });
        }
        let m = len / 2;
        let half = shared_plan(m)?;
        let step = -2.0 * std::f64::consts::PI / len as f64;
        let post = (0..=m / 2)
            .map(|k| Complex::from_polar(1.0, step * k as f64))
            .collect();
        Ok(RfftPlan { len, half, post })
    }

    /// Real transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the plan length is zero (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of non-redundant spectrum bins: `len / 2 + 1`.
    #[inline]
    pub fn spectrum_len(&self) -> usize {
        self.len / 2 + 1
    }

    /// Estimated resident bytes of this plan's *own* tables (the untangle
    /// twiddles). The embedded half-length complex plan is shared through
    /// the plan cache and accounted there, not here.
    pub fn estimated_bytes(&self) -> u64 {
        (self.post.len() * std::mem::size_of::<Complex>()) as u64
    }

    /// Forward real FFT: `src` holds `len` reals, `dst` receives the
    /// `len/2 + 1` non-redundant bins (`dst[k] = X[k]` for `k <= len/2`;
    /// the rest follow from `X[len-k] = conj(X[k])`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if either buffer has the wrong
    /// length.
    pub fn forward(&self, src: &[f64], dst: &mut [Complex]) -> Result<(), FftError> {
        let n = self.len;
        if src.len() != n {
            return Err(FftError::LengthMismatch {
                expected: n,
                actual: src.len(),
            });
        }
        let m = n / 2;
        if dst.len() != m + 1 {
            return Err(FftError::LengthMismatch {
                expected: m + 1,
                actual: dst.len(),
            });
        }
        if m == 1 {
            dst[0] = Complex::from_re(src[0] + src[1]);
            dst[1] = Complex::from_re(src[0] - src[1]);
            return Ok(());
        }
        // Pack two reals per complex and run the half-length FFT.
        for (z, pair) in dst[..m].iter_mut().zip(src.chunks_exact(2)) {
            *z = Complex::new(pair[0], pair[1]);
        }
        self.half
            .transform(&mut dst[..m], Direction::Forward)
            .expect("half plan length matches by construction");
        // Untangle: with E/O the spectra of the even/odd subsequences,
        // E[k] = (Z[k] + conj(Z[m-k]))/2, O[k] = -i (Z[k] - conj(Z[m-k]))/2
        // and X[k] = E[k] + w^k O[k] with w = e^{-2 pi i / n}.
        let z0 = dst[0];
        dst[0] = Complex::from_re(z0.re + z0.im);
        dst[m] = Complex::from_re(z0.re - z0.im);
        let h = m / 2;
        for k in 1..h {
            let zk = dst[k];
            let zmk = dst[m - k];
            let e = Complex::new(0.5 * (zk.re + zmk.re), 0.5 * (zk.im - zmk.im));
            let d = Complex::new(0.5 * (zk.re - zmk.re), 0.5 * (zk.im + zmk.im));
            let o = Complex::new(d.im, -d.re); // -i * d
            let wo = self.post[k] * o;
            dst[k] = e + wo;
            dst[m - k] = (e - wo).conj();
        }
        // k = m/2 pairs with itself: E = Re Z, O = Im Z, w^{m/2} = -i
        // exactly, so X[m/2] = conj(Z[m/2]).
        dst[h] = dst[h].conj();
        Ok(())
    }

    /// Inverse real FFT with the full `1/len` normalisation, so that
    /// `inverse(forward(x)) == x`. **Destroys `spec`** (the untangle runs
    /// in place).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if either buffer has the wrong
    /// length.
    pub fn inverse(&self, spec: &mut [Complex], dst: &mut [f64]) -> Result<(), FftError> {
        self.inverse_scaled(spec, dst, 1.0 / self.len as f64)
    }

    /// Inverse real FFT scaled so that `dst = scale * S`, where `S` is the
    /// *unnormalised* inverse DFT of the Hermitian extension of `spec`
    /// (pass `scale = 1/len` for the true inverse). **Destroys `spec`.**
    ///
    /// The scale is folded into the untangle pass, so composed transforms
    /// (e.g. the 2-D inverse) pay no extra sweep for normalisation.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if either buffer has the wrong
    /// length.
    pub fn inverse_scaled(
        &self,
        spec: &mut [Complex],
        dst: &mut [f64],
        scale: f64,
    ) -> Result<(), FftError> {
        let n = self.len;
        let m = n / 2;
        if spec.len() != m + 1 {
            return Err(FftError::LengthMismatch {
                expected: m + 1,
                actual: spec.len(),
            });
        }
        if dst.len() != n {
            return Err(FftError::LengthMismatch {
                expected: n,
                actual: dst.len(),
            });
        }
        if m == 1 {
            dst[0] = scale * (spec[0].re + spec[1].re);
            dst[1] = scale * (spec[0].re - spec[1].re);
            return Ok(());
        }
        // Re-tangle in place: rebuild the half-length spectrum
        // Z[k] = E[k] + i O[k], folding `2 * scale` into every bin so the
        // unpacking below is a plain copy. (The half inverse is run
        // unnormalised; the forward packing identity contributes the
        // factor 2 = n/m.)
        let c2 = 2.0 * scale;
        let x0 = spec[0];
        let xm = spec[m];
        spec[0] = Complex::new(
            scale * ((x0.re + xm.re) - (x0.im - xm.im)),
            scale * ((x0.im + xm.im) + (x0.re - xm.re)),
        );
        let h = m / 2;
        for k in 1..h {
            let a = spec[k];
            let b = spec[m - k].conj();
            let eh = Complex::new(scale * (a.re + b.re), scale * (a.im + b.im));
            let dh = Complex::new(scale * (a.re - b.re), scale * (a.im - b.im));
            let oh = self.post[k].conj() * dh;
            spec[k] = Complex::new(eh.re - oh.im, eh.im + oh.re);
            spec[m - k] = Complex::new(eh.re + oh.im, oh.re - eh.im);
        }
        spec[h] = spec[h].conj().scale(c2);
        self.half
            .transform(&mut spec[..m], Direction::Inverse)
            .expect("half plan length matches by construction");
        for (pair, z) in dst.chunks_exact_mut(2).zip(spec[..m].iter()) {
            pair[0] = z.re;
            pair[1] = z.im;
        }
        Ok(())
    }
}

/// A reusable real-input 2-D FFT for square `n x n` real grids, storing
/// only the `n/2 + 1` non-redundant spectrum columns (transposed layout —
/// see the module docs).
///
/// Plans come from the process-wide cache, and the layout knobs (transpose
/// tile edge, pooled row batch) are autotuned per size through
/// [`crate::cache::tuned_params`].
#[derive(Debug)]
pub struct Rfft2d {
    n: usize,
    row: Arc<RfftPlan>,
    col_plan: Arc<FftPlan>,
    block: usize,
    row_batch: usize,
}

impl Rfft2d {
    /// Creates a real 2-D plan for `n x n` grids.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NonPowerOfTwo`] unless `n` is a power of two of
    /// at least 2.
    pub fn new(n: usize) -> Result<Self, FftError> {
        let row = shared_rplan(n)?;
        let col_plan = shared_plan(n)?;
        let params = tuned_params(n, ilt_par::configured_inner_threads());
        Ok(Rfft2d {
            n,
            row,
            col_plan,
            block: params.block,
            row_batch: params.row_batch,
        })
    }

    /// Grid edge length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored spectrum columns: `n/2 + 1`.
    #[inline]
    pub fn half_cols(&self) -> usize {
        self.n / 2 + 1
    }

    /// Elements in a half-spectrum (or scratch) buffer:
    /// `(n/2 + 1) * n`.
    #[inline]
    pub fn spectrum_len(&self) -> usize {
        self.half_cols() * self.n
    }

    /// Forward real 2-D FFT: `src` is the `n x n` row-major real grid,
    /// `spec` receives the half-spectrum in transposed `(n/2+1) x n`
    /// layout (`spec[c*n + r] = X(r, c)` for `c <= n/2`), and `scratch`
    /// is a caller-owned buffer of the same size.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::ShapeMismatch`] if any buffer has the wrong
    /// length.
    pub fn forward(
        &self,
        src: &[f64],
        spec: &mut [Complex],
        scratch: &mut [Complex],
        pool: &InnerPool,
    ) -> Result<(), FftError> {
        let n = self.n;
        let hw = self.half_cols();
        if src.len() != n * n {
            return Err(FftError::ShapeMismatch {
                expected: n * n,
                actual: src.len(),
            });
        }
        self.check_spectral(spec.len())?;
        self.check_spectral(scratch.len())?;
        ilt_telemetry::counter_add("fft.rfft_forward", 1);
        // Row pass: each real row becomes hw bins in row-major scratch.
        let row = &*self.row;
        let batch = self.row_batch.min(n);
        pool.for_each_chunk_mut(scratch, hw * batch, |ci, rows| {
            for (j, out_row) in rows.chunks_exact_mut(hw).enumerate() {
                let r = ci * batch + j;
                row.forward(&src[r * n..(r + 1) * n], out_row)
                    .expect("row length matches plan by construction");
            }
        });
        // Transpose n x hw -> hw x n, then transform the hw stored columns
        // as contiguous rows. No transpose back: the half-spectrum layout
        // *is* transposed.
        transpose_into_block(scratch, n, hw, spec, self.block);
        let plan = &self.col_plan;
        pool.for_each_chunk_mut(spec, n, |_, col| {
            plan.transform(col, Direction::Forward)
                .expect("column length matches plan by construction");
        });
        Ok(())
    }

    /// Inverse real 2-D FFT with the full `1/n^2` normalisation.
    /// **Destroys `spec`.**
    ///
    /// # Errors
    ///
    /// Returns [`FftError::ShapeMismatch`] if any buffer has the wrong
    /// length.
    pub fn inverse(
        &self,
        spec: &mut [Complex],
        dst: &mut [f64],
        scratch: &mut [Complex],
        pool: &InnerPool,
    ) -> Result<(), FftError> {
        self.inverse_support_scaled(spec, dst, scratch, None, 1.0, pool)
    }

    /// Inverse real 2-D FFT of a half-spectrum known to be zero outside
    /// the listed stored columns, with an extra output scale fused in.
    /// **Destroys `spec`.**
    ///
    /// `support_cols` are stored-column indices (`0..=n/2`); every other
    /// stored column **must** already be zero in `spec` — its transform is
    /// skipped outright, and the skipped count feeds the
    /// `fft.rows_skipped` telemetry counter, exactly like
    /// [`crate::Fft2d::inverse_support`]. The output is
    /// `extra * ifft2(spec)` (pass `extra = 1.0` for the plain inverse);
    /// the scale costs nothing, it rides the untangle pass of the final
    /// real row transforms.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::ShapeMismatch`] if any buffer has the wrong
    /// length, or [`FftError::LengthMismatch`] if a support column index
    /// is out of range.
    pub fn inverse_support_scaled(
        &self,
        spec: &mut [Complex],
        dst: &mut [f64],
        scratch: &mut [Complex],
        support_cols: Option<&[usize]>,
        extra: f64,
        pool: &InnerPool,
    ) -> Result<(), FftError> {
        let n = self.n;
        let hw = self.half_cols();
        self.check_spectral(spec.len())?;
        self.check_spectral(scratch.len())?;
        if dst.len() != n * n {
            return Err(FftError::ShapeMismatch {
                expected: n * n,
                actual: dst.len(),
            });
        }
        if let Some(cols) = support_cols {
            if let Some(&bad) = cols.iter().find(|&&c| c >= hw) {
                return Err(FftError::LengthMismatch {
                    expected: hw,
                    actual: bad,
                });
            }
        }
        ilt_telemetry::counter_add("fft.rfft_inverse", 1);
        // Column pass (stored columns are contiguous rows of `spec`).
        let plan = &self.col_plan;
        match support_cols {
            Some(cols) => {
                ilt_telemetry::counter_add("fft.rows_skipped", (hw - cols.len().min(hw)) as u64);
                for &c in cols {
                    plan.transform(&mut spec[c * n..(c + 1) * n], Direction::Inverse)
                        .expect("column length matches plan by construction");
                }
            }
            None => {
                pool.for_each_chunk_mut(spec, n, |_, col| {
                    plan.transform(col, Direction::Inverse)
                        .expect("column length matches plan by construction");
                });
            }
        }
        // Transpose hw x n -> n x hw, then untangle each row back to
        // reals. The whole 2-D normalisation (and the caller's extra
        // scale) is fused into the row untangle.
        transpose_into_block(spec, hw, n, scratch, self.block);
        let row = &*self.row;
        let scale = extra / (n * n) as f64;
        let batch = self.row_batch.min(n);
        pool.for_each_chunk_zip_mut(scratch, hw * batch, dst, n * batch, |_, srows, drows| {
            for (srow, drow) in srows.chunks_exact_mut(hw).zip(drows.chunks_exact_mut(n)) {
                row.inverse_scaled(srow, drow, scale)
                    .expect("row length matches plan by construction");
            }
        });
        Ok(())
    }

    fn check_spectral(&self, len: usize) -> Result<(), FftError> {
        if len != self.spectrum_len() {
            return Err(FftError::ShapeMismatch {
                expected: self.spectrum_len(),
                actual: len,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft2_reference, dft_reference};
    use crate::fft2d::Fft2d;

    fn reals(n: usize, seed: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37 + seed).sin() + 0.25 * (i as f64 * 1.91 + seed).cos())
            .collect()
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(RfftPlan::new(0).is_err());
        assert!(RfftPlan::new(1).is_err());
        assert!(RfftPlan::new(12).is_err());
        assert!(Rfft2d::new(6).is_err());
        let plan = RfftPlan::new(8).unwrap();
        assert!(!plan.is_empty());
        assert_eq!(plan.spectrum_len(), 5);
        assert!(plan.estimated_bytes() > 0);
        let mut spec = vec![Complex::ZERO; 4];
        assert!(plan.forward(&[0.0; 8], &mut spec).is_err());
        assert!(plan.forward(&[0.0; 7], &mut [Complex::ZERO; 5]).is_err());
        let mut out = [0.0; 7];
        assert!(plan.inverse(&mut [Complex::ZERO; 5], &mut out).is_err());
    }

    #[test]
    fn forward_matches_complex_dft_over_sizes() {
        for n in [2usize, 4, 8, 16, 64, 256, 512] {
            let plan = RfftPlan::new(n).unwrap();
            for (case, x) in [
                ("impulse", {
                    let mut v = vec![0.0; n];
                    v[n / 2 - 1] = 1.0;
                    v
                }),
                ("dc", vec![1.0; n]),
                ("random", reals(n, 0.3)),
            ] {
                let data: Vec<Complex> = x.iter().map(|&r| Complex::from_re(r)).collect();
                let reference = dft_reference(&data, Direction::Forward);
                let mut spec = vec![Complex::ZERO; n / 2 + 1];
                plan.forward(&x, &mut spec).unwrap();
                for (k, z) in spec.iter().enumerate() {
                    assert!(
                        (*z - reference[k]).abs() < 1e-9 * (n as f64),
                        "{case} n={n} bin {k}: {z:?} vs {:?}",
                        reference[k]
                    );
                }
            }
        }
    }

    #[test]
    fn roundtrip_is_tight() {
        for n in [2usize, 8, 32, 128, 512] {
            let plan = RfftPlan::new(n).unwrap();
            let x = reals(n, 1.7);
            let mut spec = vec![Complex::ZERO; n / 2 + 1];
            plan.forward(&x, &mut spec).unwrap();
            let mut back = vec![0.0; n];
            plan.inverse(&mut spec, &mut back).unwrap();
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-12, "n={n}");
            }
        }
    }

    #[test]
    fn inverse_scaled_folds_the_scale() {
        let n = 16;
        let plan = RfftPlan::new(n).unwrap();
        let x = reals(n, 0.9);
        let mut spec = vec![Complex::ZERO; n / 2 + 1];
        plan.forward(&x, &mut spec).unwrap();
        let mut spec2 = spec.clone();
        let mut a = vec![0.0; n];
        let mut b = vec![0.0; n];
        plan.inverse(&mut spec, &mut a).unwrap();
        plan.inverse_scaled(&mut spec2, &mut b, 3.0 / n as f64)
            .unwrap();
        for (u, v) in a.iter().zip(&b) {
            assert!((3.0 * u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn rfft2_matches_complex_fft2_on_stored_half() {
        for n in [4usize, 8, 32] {
            let rfft = Rfft2d::new(n).unwrap();
            let hw = rfft.half_cols();
            let x: Vec<f64> = reals(n * n, 0.11);
            let data: Vec<Complex> = x.iter().map(|&r| Complex::from_re(r)).collect();
            let reference = dft2_reference(&data, n, n, Direction::Forward);
            let mut spec = vec![Complex::ZERO; rfft.spectrum_len()];
            let mut scratch = vec![Complex::ZERO; rfft.spectrum_len()];
            rfft.forward(&x, &mut spec, &mut scratch, &InnerPool::serial())
                .unwrap();
            for c in 0..hw {
                for r in 0..n {
                    assert!(
                        (spec[c * n + r] - reference[r * n + c]).abs() < 1e-9 * (n as f64),
                        "n={n} bin ({r},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn rfft2_roundtrip_and_pool_bit_identity() {
        let n = 64;
        let rfft = Rfft2d::new(n).unwrap();
        let x: Vec<f64> = reals(n * n, 2.3);
        let run = |pool: &InnerPool| {
            let mut spec = vec![Complex::ZERO; rfft.spectrum_len()];
            let mut scratch = vec![Complex::ZERO; rfft.spectrum_len()];
            rfft.forward(&x, &mut spec, &mut scratch, pool).unwrap();
            let mut back = vec![0.0; n * n];
            rfft.inverse(&mut spec, &mut back, &mut scratch, pool)
                .unwrap();
            back
        };
        let serial = run(&InnerPool::serial());
        let pooled = run(&InnerPool::new(4));
        assert_eq!(serial, pooled, "pooled rfft2 must be bit-identical");
        for (a, b) in x.iter().zip(&serial) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn rfft2_sparse_support_matches_dense_inverse() {
        // A Hermitian half-spectrum nonzero only on a few stored columns:
        // the sparse entry point must agree with the dense inverse bit for
        // bit, and with the full complex transform to tolerance.
        let n = 32;
        let rfft = Rfft2d::new(n).unwrap();
        let hw = rfft.half_cols();
        // Build a valid half-spectrum by transforming a real image whose
        // spectrum we then crop to the support columns.
        let x: Vec<f64> = reals(n * n, 4.2);
        let mut spec = vec![Complex::ZERO; rfft.spectrum_len()];
        let mut scratch = vec![Complex::ZERO; rfft.spectrum_len()];
        rfft.forward(&x, &mut spec, &mut scratch, &InnerPool::serial())
            .unwrap();
        let support = [0usize, 1, 2]; // low stored columns only
        let mut cropped = vec![Complex::ZERO; rfft.spectrum_len()];
        for &c in &support {
            cropped[c * n..(c + 1) * n].copy_from_slice(&spec[c * n..(c + 1) * n]);
        }
        // To keep the implied full spectrum Hermitian, the mirrored
        // columns n-1, n-2 are implied by stored columns 1, 2 — the
        // reference complex spectrum must crop those too.
        let mut dense = cropped.clone();
        let mut sparse = cropped;
        let mut out_dense = vec![0.0; n * n];
        let mut out_sparse = vec![0.0; n * n];
        rfft.inverse(
            &mut dense,
            &mut out_dense,
            &mut scratch,
            &InnerPool::serial(),
        )
        .unwrap();
        rfft.inverse_support_scaled(
            &mut sparse,
            &mut out_sparse,
            &mut scratch,
            Some(&support),
            1.0,
            &InnerPool::serial(),
        )
        .unwrap();
        assert_eq!(out_dense, out_sparse);
        // And against the dense complex reference of the same crop: keep a
        // full-spectrum column if its stored image is in the support.
        let full = Fft2d::new(n, n).unwrap();
        let mut cf = vec![Complex::ZERO; n * n];
        for c in 0..n {
            let stored = if c < hw { c } else { n - c };
            if !support.contains(&stored) {
                continue;
            }
            for r in 0..n {
                cf[r * n + c] = spec_at(&spec, n, r, c);
            }
        }
        full.inverse(&mut cf).unwrap();
        for (i, z) in cf.iter().enumerate() {
            assert!((z.re - out_sparse[i]).abs() < 1e-10);
            assert!(z.im.abs() < 1e-10);
        }
    }

    /// Full-spectrum lookup through the Hermitian symmetry of the stored
    /// transposed half-spectrum.
    fn spec_at(spec: &[Complex], n: usize, r: usize, c: usize) -> Complex {
        if c <= n / 2 {
            spec[c * n + r]
        } else {
            spec[(n - c) * n + (n - r) % n].conj()
        }
    }

    #[test]
    fn rfft2_support_rejects_out_of_range_columns() {
        let n = 8;
        let rfft = Rfft2d::new(n).unwrap();
        let mut spec = vec![Complex::ZERO; rfft.spectrum_len()];
        let mut scratch = vec![Complex::ZERO; rfft.spectrum_len()];
        let mut out = vec![0.0; n * n];
        assert!(matches!(
            rfft.inverse_support_scaled(
                &mut spec,
                &mut out,
                &mut scratch,
                Some(&[5]),
                1.0,
                &InnerPool::serial()
            ),
            Err(FftError::LengthMismatch { .. })
        ));
    }
}

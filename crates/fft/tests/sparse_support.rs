//! Dense vs sparse-support inverse parity on random `P x P`-supported
//! spectra — the exact shape the per-kernel inverse of Eq. (2) sees.

use ilt_fft::{spectral, Complex, Fft2d};

/// Deterministic xorshift values in [-1, 1).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
}

/// The wrapped (unshifted) spectrum indices of a centered `p`-wide support,
/// exactly as `LithoSimulator` computes them.
fn support_bins(p: usize, n: usize) -> Vec<usize> {
    let half = p as i64 / 2;
    (0..p)
        .map(|i| spectral::wrap_index(i as i64 - half, n))
        .collect()
}

#[test]
fn sparse_inverse_is_bit_identical_to_dense_on_random_supported_spectra() {
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    for &(n, p) in &[(64usize, 23usize), (32, 9), (128, 23), (16, 16)] {
        let fft = Fft2d::new(n, n).unwrap();
        let bins = support_bins(p, n);
        for trial in 0..5 {
            // Random spectrum supported only on the centered P x P block.
            let mut dense = vec![Complex::ZERO; n * n];
            for &r in &bins {
                for &c in &bins {
                    dense[r * n + c] = Complex::new(rng.next(), rng.next());
                }
            }
            let mut sparse = dense.clone();
            fft.inverse(&mut dense).unwrap();
            fft.inverse_support(&mut sparse, &bins).unwrap();
            assert_eq!(dense, sparse, "n={n} p={p} trial={trial}");
        }
    }
}

#[test]
fn sparse_inverse_with_pool_matches_serial() {
    let mut rng = Rng(42);
    let (n, p) = (64usize, 23usize);
    let fft = Fft2d::new(n, n).unwrap();
    let bins = support_bins(p, n);
    let mut data = vec![Complex::ZERO; n * n];
    for &r in &bins {
        for &c in &bins {
            data[r * n + c] = Complex::new(rng.next(), rng.next());
        }
    }
    let mut pooled = data.clone();
    fft.inverse_support(&mut data, &bins).unwrap();
    fft.inverse_support_with_pool(&mut pooled, &bins, &ilt_par::InnerPool::new(4))
        .unwrap();
    assert_eq!(data, pooled);
}

//! Proves the sparse-support inverse actually skips work: the
//! `fft.rows_skipped` counter must record the pruned first-pass rows.
//!
//! Lives in its own test binary (single test) because it toggles and
//! drains the process-global telemetry collector.

use ilt_fft::{Complex, Fft2d};

#[test]
fn sparse_inverse_reports_skipped_rows() {
    let (n, p) = (64usize, 23usize);
    let fft = Fft2d::new(n, n).unwrap();
    let bins: Vec<usize> = (0..p).collect(); // any valid support rows
    let mut data = vec![Complex::ZERO; n * n];

    ilt_telemetry::set_enabled(true);
    let _ = ilt_telemetry::drain(); // discard anything collected so far
    fft.inverse_support(&mut data, &bins).unwrap();
    fft.inverse_support(&mut data, &bins).unwrap();
    let tele = ilt_telemetry::drain();
    ilt_telemetry::set_enabled(false);

    let skipped = tele.counters.get("fft.rows_skipped").copied().unwrap_or(0);
    assert_eq!(
        skipped,
        2 * (n - p) as u64,
        "each sparse inverse must skip n - P first-pass rows"
    );
    assert!(skipped > 0);
    assert_eq!(tele.counters.get("fft.inverse").copied(), Some(2));
}

//! Integration tests for `ilt-telemetry`.
//!
//! Telemetry state is process-global, so every test that enables
//! collection serialises on [`LOCK`] and drains fully before releasing it.

use std::sync::Mutex;

use ilt_telemetry as tele;

static LOCK: Mutex<()> = Mutex::new(());

fn with_tracing<R>(f: impl FnOnce() -> R) -> (R, tele::Telemetry) {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _ = tele::drain(); // discard leftovers from other tests
    tele::set_enabled(true);
    let r = f();
    tele::set_enabled(false);
    let t = tele::drain();
    (r, t)
}

#[test]
fn disabled_spans_record_nothing_but_still_time() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _ = tele::drain();
    tele::set_enabled(false);
    let mut s = tele::span("unit.disabled");
    s.add_field("k", 1u64);
    // Spans are always on (the flight recorder needs ids and the stack),
    // but the drainable sink stays empty while collection is disabled.
    assert!(s.span_ref().is_some());
    assert!(s.trace_id().is_some(), "root spans mint a trace id");
    let secs = s.end();
    assert!(secs >= 0.0);
    tele::counter_add("unit.disabled_counter", 5);
    tele::record_value("unit.disabled_hist", 5);
    tele::gauge_set("unit.disabled_gauge", 1.0);
    let t = tele::drain();
    assert_eq!(t.span_count("unit.disabled"), 0);
    assert!(!t.counters.contains_key("unit.disabled_counter"));
    assert!(!t.histograms.contains_key("unit.disabled_hist"));
    assert!(!t.gauges.contains_key("unit.disabled_gauge"));
}

#[test]
fn nesting_links_parents_and_end_matches_event_duration() {
    let ((), t) = with_tracing(|| {
        let outer = tele::span("unit.outer");
        let outer_id = outer.span_ref().expect("recording");
        {
            let inner = tele::span("unit.inner");
            assert_eq!(tele::current_span(), inner.span_ref());
            let secs = inner.end();
            assert!(secs >= 0.0);
        }
        assert_eq!(tele::current_span(), Some(outer_id));
    });
    let outer = t.events.iter().find(|e| e.name == "unit.outer").unwrap();
    let inner = t.events.iter().find(|e| e.name == "unit.inner").unwrap();
    assert_eq!(inner.parent, Some(outer.id));
    assert_eq!(outer.parent, None);
    assert!(inner.dur_ns <= outer.dur_ns);
}

#[test]
fn parent_scope_adopts_across_threads() {
    let ((), t) = with_tracing(|| {
        let flow = tele::span(tele::names::FLOW);
        let parent = flow.span_ref();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(move || {
                    let _adopt = tele::parent_scope(parent);
                    let _job = tele::span("unit.worker_job");
                });
            }
        });
    });
    let flow_id = t
        .events
        .iter()
        .find(|e| e.name == tele::names::FLOW)
        .unwrap()
        .id;
    let jobs: Vec<_> = t
        .events
        .iter()
        .filter(|e| e.name == "unit.worker_job")
        .collect();
    assert_eq!(jobs.len(), 2);
    for j in &jobs {
        assert_eq!(j.parent, Some(flow_id));
    }
    // Worker threads got distinct thread ordinals.
    assert_ne!(jobs[0].thread, jobs[1].thread);
}

#[test]
fn counters_and_histograms_merge_across_threads() {
    let ((), t) = with_tracing(|| {
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    tele::counter_add("unit.count", 2);
                    for v in [1u64, 10, 100] {
                        tele::record_value("unit.hist", v);
                    }
                    // Thread-local destructors may run after the scope's
                    // join is observed, so flush before the thread ends.
                    tele::flush_thread();
                });
            }
        });
    });
    assert_eq!(t.counters["unit.count"], 6);
    let h = &t.histograms["unit.hist"];
    assert_eq!(h.count(), 9);
    assert_eq!(h.sum(), 333);
    assert_eq!(h.min(), 1);
    assert_eq!(h.max(), 100);
}

#[test]
fn histogram_quantiles_are_bucket_bounded() {
    let mut h = tele::Histogram::new();
    for v in 1..=100u64 {
        h.record(v);
    }
    let p50 = h.quantile(0.5);
    let p95 = h.quantile(0.95);
    // True p50 = 50, bucket [32,63]; true p95 = 95, bucket [64,100 (clamped)].
    assert_eq!(p50, 63);
    assert_eq!(p95, 100);
    assert_eq!(h.quantile(1.0), 100);
    assert_eq!(h.quantile(0.0), 1); // clamped to first sample's bucket
    assert_eq!(tele::Histogram::new().quantile(0.5), 0);
}

#[test]
fn exporters_cover_all_spans_and_parse_as_json_shapes() {
    let ((), t) = with_tracing(|| {
        let mut flow = tele::span(tele::names::FLOW);
        flow.add_field("name", "demo \"flow\"");
        {
            let mut stage = tele::span(tele::names::STAGE);
            stage.add_field("label", "stage 1");
            for i in 0..3usize {
                let mut tile = tele::span(tele::names::TILE);
                tile.add_field("tile", i);
            }
            let _asm = tele::span(tele::names::ASSEMBLY);
        }
        tele::counter_add("unit.export_counter", 1);
        tele::record_value("unit.export_hist", 42);
    });

    let jsonl = t.to_jsonl();
    let span_lines = jsonl.lines().filter(|l| l.contains("\"type\":\"span\""));
    assert_eq!(span_lines.count(), t.events.len());
    assert!(jsonl.contains("\\\"flow\\\"")); // quotes escaped
    assert!(jsonl.contains("\"type\":\"counter\""));
    assert!(jsonl.contains("\"type\":\"histogram\""));

    let chrome = t.to_chrome_trace();
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.ends_with("]}"));
    assert_eq!(chrome.matches("\"ph\":\"X\"").count(), t.events.len());

    let tree = t.render_tree();
    assert!(tree.contains("stage(stage 1)"));
    assert!(tree.contains("tile(2)"));
    assert!(tree.contains("unit.export_counter = 1"));

    let tree_json = t.span_tree_json();
    assert!(tree_json.starts_with('['));
    assert!(tree_json.contains("\"children\":["));

    let flows = t.flow_summaries();
    assert_eq!(flows.len(), 1);
    assert_eq!(flows[0].name, "demo \"flow\"");
    assert_eq!(flows[0].stages.len(), 1);
    let s = &flows[0].stages[0];
    assert_eq!(s.label, "stage 1");
    assert_eq!(s.tile_count, 3);
    assert!(s.tile_seconds <= s.seconds);
    assert!(s.assembly_seconds <= s.seconds);
    assert!(s.seconds <= flows[0].seconds);
}

#[test]
fn tiles_found_below_job_spans() {
    let ((), t) = with_tracing(|| {
        let mut flow = tele::span(tele::names::FLOW);
        flow.add_field("name", "jobbed");
        let mut stage = tele::span(tele::names::STAGE);
        stage.add_field("label", "s");
        for i in 0..2usize {
            let mut job = tele::span(tele::names::JOB);
            job.add_field("job", i);
            let mut tile = tele::span(tele::names::TILE);
            tile.add_field("tile", i);
        }
    });
    let flows = t.flow_summaries();
    assert_eq!(flows[0].stages[0].tile_count, 2);
}

#[test]
fn snapshot_is_non_destructive_and_drain_still_sees_everything() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _ = tele::drain();
    tele::set_enabled(true);
    tele::counter_add("unit.snap_counter", 2);
    tele::record_value("unit.snap_hist", 7);
    {
        let mut s = tele::span("unit.snap_span");
        s.add_field("k", 1u64);
    }
    let first = tele::snapshot();
    assert_eq!(first.counters["unit.snap_counter"], 2);
    assert_eq!(first.histograms["unit.snap_hist"].count(), 1);
    assert_eq!(first.span_count("unit.snap_span"), 1);
    // A second snapshot sees the same totals plus anything new.
    tele::counter_add("unit.snap_counter", 3);
    let second = tele::snapshot();
    assert_eq!(second.counters["unit.snap_counter"], 5);
    // The final drain still holds the full run, then resets.
    tele::set_enabled(false);
    let t = tele::drain();
    assert_eq!(t.counters["unit.snap_counter"], 5);
    assert_eq!(t.span_count("unit.snap_span"), 1);
    assert!(tele::snapshot().is_empty());
}

#[test]
fn prometheus_exposition_shape() {
    let ((), t) = with_tracing(|| {
        tele::counter_add("unit.promo.requests", 4);
        for v in [10u64, 20, 30] {
            tele::record_value("unit.promo.latency_us", v);
        }
    });
    let text = t.to_prometheus();
    assert!(text.contains("# TYPE ilt_unit_promo_requests_total counter"));
    assert!(text.contains("ilt_unit_promo_requests_total 4"));
    assert!(text.contains("# TYPE ilt_unit_promo_latency_us summary"));
    assert!(text.contains("ilt_unit_promo_latency_us{quantile=\"0.5\"}"));
    assert!(text.contains("ilt_unit_promo_latency_us_count 3"));
    assert!(text.contains("ilt_unit_promo_latency_us_sum 60"));
    // Every non-comment line is "name[{labels}] value".
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let mut parts = line.rsplitn(2, ' ');
        let value = parts.next().unwrap();
        assert!(value.parse::<f64>().is_ok(), "unparsable sample: {line}");
        assert!(parts.next().unwrap().starts_with("ilt_"));
    }
}

#[test]
fn spans_carry_the_ambient_trace_and_roots_mint_their_own() {
    let ((), t) = with_tracing(|| {
        let (id, _scope) = tele::new_trace_scope();
        let outer = tele::span("unit.traced_outer");
        assert_eq!(outer.trace_id(), Some(id));
        let inner = tele::span("unit.traced_inner");
        assert_eq!(inner.trace_id(), Some(id));
        drop(inner);
        drop(outer);
        drop(_scope);
        // No ambient trace: a root span mints a fresh id, children
        // inherit it, and the slot is cleared once the root closes.
        let root = tele::span("unit.minted_root");
        let minted = root.trace_id().expect("root minted a trace");
        assert_ne!(minted, id);
        assert_eq!(tele::current_trace(), Some(minted));
        let child = tele::span("unit.minted_child");
        assert_eq!(child.trace_id(), Some(minted));
        drop(child);
        drop(root);
        assert_eq!(tele::current_trace(), None);
    });
    let outer = t
        .events
        .iter()
        .find(|e| e.name == "unit.traced_outer")
        .unwrap();
    let inner = t
        .events
        .iter()
        .find(|e| e.name == "unit.traced_inner")
        .unwrap();
    let root = t
        .events
        .iter()
        .find(|e| e.name == "unit.minted_root")
        .unwrap();
    let child = t
        .events
        .iter()
        .find(|e| e.name == "unit.minted_child")
        .unwrap();
    assert_eq!(outer.trace, inner.trace);
    assert_eq!(root.trace, child.trace);
    assert_ne!(outer.trace, root.trace);
    assert!(
        t.events.iter().all(|e| e.trace != 0),
        "no unattributed span"
    );
}

#[test]
fn trace_crosses_threads_via_trace_scope() {
    let ((), t) = with_tracing(|| {
        let (id, _scope) = tele::new_trace_scope();
        let flow = tele::span("unit.cross_flow");
        let parent = flow.span_ref();
        let trace = tele::current_trace();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let _adopted = tele::parent_scope(parent);
                let _trace = tele::trace_scope(trace);
                let worker = tele::span("unit.cross_worker");
                assert_eq!(worker.trace_id(), Some(id));
            });
        });
    });
    let flow = t
        .events
        .iter()
        .find(|e| e.name == "unit.cross_flow")
        .unwrap();
    let worker = t
        .events
        .iter()
        .find(|e| e.name == "unit.cross_worker")
        .unwrap();
    assert_eq!(worker.parent, Some(flow.id));
    assert_eq!(worker.trace, flow.trace);
    assert_ne!(worker.thread, flow.thread);
}

#[test]
fn flight_recorder_keeps_spans_without_ilt_trace() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _ = tele::drain();
    tele::set_enabled(false);
    let (id, scope) = tele::new_trace_scope();
    let root = tele::span("unit.flight_root");
    drop(tele::span("unit.flight_child"));
    drop(root);
    drop(scope);
    assert!(
        tele::drain().is_empty(),
        "sink must stay empty when disabled"
    );
    let spans = tele::flight::trace_spans(id.0);
    let names: Vec<&str> = spans.iter().map(|e| e.name).collect();
    assert!(names.contains(&"unit.flight_root"), "{names:?}");
    assert!(names.contains(&"unit.flight_child"), "{names:?}");
    assert!(spans.iter().all(|e| e.trace == id.0));
}

#[test]
fn flight_recorder_overflow_drops_oldest_and_counts() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _ = tele::drain();
    tele::set_enabled(false);
    let before_cap = tele::flight::capacity();
    tele::flight::set_capacity(16);
    let dropped_before = tele::flight::spans_dropped();
    let (id, _scope) = tele::new_trace_scope();
    for _ in 0..100 {
        drop(tele::span("unit.flight_overflow"));
    }
    // All 100 spans came from this thread, so they share one shard of
    // capacity 16: memory stayed bounded and the rest were evicted.
    let kept = tele::flight::trace_spans(id.0).len();
    assert!(kept <= 16, "ring kept {kept} spans over capacity");
    assert!(kept > 0, "ring kept the newest spans");
    let dropped = tele::flight::spans_dropped() - dropped_before;
    assert!(dropped >= 100 - 16, "only {dropped} drops counted");
    tele::flight::set_capacity(before_cap);
}

#[test]
fn record_span_at_backfills_under_the_current_span() {
    let ((), t) = with_tracing(|| {
        let (_id, _scope) = tele::new_trace_scope();
        let start = std::time::Instant::now();
        let _job = tele::span("unit.backfill_job");
        let end = std::time::Instant::now();
        tele::record_span_at(
            "unit.backfill_queue",
            start,
            end,
            vec![("job", tele::FieldValue::U64(7))],
        );
    });
    let job = t
        .events
        .iter()
        .find(|e| e.name == "unit.backfill_job")
        .unwrap();
    let queue = t
        .events
        .iter()
        .find(|e| e.name == "unit.backfill_queue")
        .unwrap();
    assert_eq!(queue.parent, Some(job.id));
    assert_eq!(queue.trace, job.trace);
    assert_eq!(queue.field("job").and_then(|v| v.as_u64()), Some(7));
}

#[test]
fn gauges_snapshot_export_and_drain() {
    let ((), t) = with_tracing(|| {
        tele::gauge_set("unit.gauge_depth", 3.0);
        tele::gauge_add("unit.gauge_inflight", 2.0);
        tele::gauge_add("unit.gauge_inflight", -1.0);
        let snap = tele::snapshot();
        assert_eq!(snap.gauges["unit.gauge_depth"], 3.0);
        assert_eq!(snap.gauges["unit.gauge_inflight"], 1.0);
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE ilt_unit_gauge_depth gauge"), "{prom}");
        assert!(prom.contains("ilt_unit_gauge_depth 3"), "{prom}");
        let jsonl = snap.to_jsonl();
        assert!(jsonl.contains("{\"type\":\"gauge\",\"name\":\"unit.gauge_depth\",\"value\":3"));
    });
    assert_eq!(t.gauges["unit.gauge_depth"], 3.0);
    // drain() took the registry with it.
    assert!(tele::snapshot().gauges.is_empty());
}

#[test]
fn counters_attribute_to_the_ambient_trace() {
    let ((a, b), _t) = with_tracing(|| {
        let (a, scope_a) = tele::new_trace_scope();
        tele::counter_add("unit.trace_counter", 2);
        drop(scope_a);
        let (b, scope_b) = tele::new_trace_scope();
        tele::counter_add("unit.trace_counter", 5);
        drop(scope_b);
        (a, b)
    });
    assert_eq!(tele::trace_counters(a.0)["unit.trace_counter"], 2);
    assert_eq!(tele::trace_counters(b.0)["unit.trace_counter"], 5);
    assert!(tele::trace_counters(u64::MAX).is_empty());
}

#[test]
fn latency_budget_attributes_stage_classes() {
    let ((), t) = with_tracing(|| {
        let mut build = tele::span(tele::names::BUILD);
        build.add_field("what", "kernel_bank");
        std::thread::sleep(std::time::Duration::from_millis(2));
        drop(build);
        let mut flow = tele::span(tele::names::FLOW);
        flow.add_field("name", "unit-budget");
        for label in ["coarse", "fine stage 1", "refine color 0", "exotic"] {
            let mut stage = tele::span(tele::names::STAGE);
            stage.add_field("label", label);
            {
                let mut tile = tele::span(tele::names::TILE);
                tile.add_field("tile", 0u64);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let _assembly = tele::span(tele::names::ASSEMBLY);
        }
        tele::record_value("serve.job.queue_us", 2_000_000);
    });
    let budget = t.latency_budget();
    assert!(budget.kernel_build_s > 0.0);
    assert!(budget.coarse_tiles_s > 0.0);
    assert!(budget.fine_tiles_s > 0.0);
    assert!(budget.refine_tiles_s > 0.0);
    assert!(budget.other_tiles_s > 0.0);
    assert!(budget.flow_total_s > 0.0);
    assert!((budget.queue_wait_s - 2.0).abs() < 1e-9);
    assert!(budget.unattributed_s() >= 0.0);
    let json = budget.to_json();
    assert!(json.starts_with("{\"queue_wait_s\":"), "{json}");
    assert!(json.contains("\"flow_total_s\":"), "{json}");
}

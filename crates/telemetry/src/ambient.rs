//! One-stop capture/install of ambient thread-local context.
//!
//! Several crates keep per-thread ambient state that worker pools must carry
//! from the submitting thread onto each worker: the active span parent and
//! trace id (this crate), the profiling stage (`ilt-prof`), and the job
//! deadline (`ilt-fault`). Before this module existed, every pool re-applied
//! each of those by hand — four parallel scope guards that had to be kept in
//! sync whenever a new ambient was added.
//!
//! [`AmbientContext::capture`] snapshots all of them at once: the span parent
//! and trace natively, plus every [`Propagator`] registered by higher-level
//! crates. [`AmbientContext::install`] re-applies the snapshot on the current
//! thread and returns a guard bundle that restores the previous state on
//! drop. Telemetry sits at the bottom of the dependency graph, so it cannot
//! name `ilt-prof` or `ilt-fault` types directly; those crates register their
//! slots through the type-erased [`register`] hook instead (see
//! `ilt-tile`, which registers both and uses the context in its executor).

use std::any::Any;
use std::sync::{Arc, OnceLock, RwLock};

use crate::span::{current_span, parent_scope, ParentScope, SpanRef};
use crate::trace::{current_trace, trace_scope, TraceId, TraceScope};

/// A captured ambient value, type-erased so the registry can hold slots from
/// crates this one cannot name. `Send + Sync` because one capture is shared
/// by every worker thread of a pool.
pub type CapturedValue = Arc<dyn Any + Send + Sync>;

/// A scope guard returned by a propagator's `install`; dropping it restores
/// the thread's previous ambient state. Deliberately `!Send`: guards live and
/// die on the worker thread that installed them.
pub type SlotGuard = Box<dyn Any>;

/// One ambient slot a higher-level crate wants carried to worker threads.
pub struct Propagator {
    /// Unique slot name; a second registration under the same name is
    /// ignored, which makes registration idempotent.
    pub name: &'static str,
    /// Snapshots the slot's current value on the capturing thread.
    pub capture: fn() -> CapturedValue,
    /// Re-applies a snapshot on the installing thread, returning the scope
    /// guard that undoes it. Implementations should tolerate a foreign value
    /// (failed downcast) by returning an inert guard.
    pub install: fn(&CapturedValue) -> SlotGuard,
}

fn registry() -> &'static RwLock<Vec<Propagator>> {
    static REGISTRY: OnceLock<RwLock<Vec<Propagator>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Vec::new()))
}

/// Registers an ambient slot. Idempotent by `name`: registering the same
/// slot twice (e.g. from two executors racing through their `Once`) keeps
/// the first registration.
pub fn register(propagator: Propagator) {
    let mut slots = registry().write().unwrap_or_else(|e| e.into_inner());
    if slots.iter().any(|slot| slot.name == propagator.name) {
        return;
    }
    slots.push(propagator);
}

/// Names of the currently registered slots, in registration order (the
/// built-in span-parent and trace slots are implicit and always present).
pub fn registered_slots() -> Vec<&'static str> {
    registry()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|slot| slot.name)
        .collect()
}

/// An install function paired with the value it will re-apply.
type CapturedSlot = (fn(&CapturedValue) -> SlotGuard, CapturedValue);

/// A snapshot of every ambient slot on the capturing thread. `Sync` so a
/// worker pool can capture once and install from each worker.
pub struct AmbientContext {
    parent: Option<SpanRef>,
    trace: Option<TraceId>,
    extras: Vec<CapturedSlot>,
}

impl AmbientContext {
    /// Snapshots the current thread's span parent, trace id, and every
    /// registered propagator slot.
    pub fn capture() -> Self {
        let extras = registry()
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|slot| (slot.install, (slot.capture)()))
            .collect();
        AmbientContext {
            parent: current_span(),
            trace: current_trace(),
            extras,
        }
    }

    /// Re-applies the snapshot on the current thread. Keep the returned
    /// guard alive for as long as the thread works on the captured context;
    /// dropping it restores the previous ambient state (and flushes this
    /// thread's telemetry, via the parent scope).
    pub fn install(&self) -> AmbientGuards {
        AmbientGuards {
            _extras: self
                .extras
                .iter()
                .map(|(install, value)| install(value))
                .collect(),
            _trace: trace_scope(self.trace),
            _parent: parent_scope(self.parent),
        }
    }
}

/// Guard bundle returned by [`AmbientContext::install`].
pub struct AmbientGuards {
    _parent: ParentScope,
    _trace: TraceScope,
    _extras: Vec<SlotGuard>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_and_install_carry_trace_across_threads() {
        let (id, _scope) = crate::new_trace_scope();
        let ambient = AmbientContext::capture();
        let seen = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guards = ambient.install();
                    crate::current_trace()
                })
                .join()
                .unwrap()
        });
        assert_eq!(seen, Some(id));
    }

    #[test]
    fn registration_is_idempotent_by_name() {
        fn capture() -> CapturedValue {
            Arc::new(7u32)
        }
        fn install(_: &CapturedValue) -> SlotGuard {
            Box::new(())
        }
        let slot = || Propagator {
            name: "test.ambient.idempotent",
            capture,
            install,
        };
        register(slot());
        register(slot());
        let names = registered_slots();
        let count = names
            .iter()
            .filter(|n| **n == "test.ambient.idempotent")
            .count();
        assert_eq!(count, 1, "{names:?}");
    }

    #[test]
    fn registered_slot_value_reaches_installing_thread() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static LAST_INSTALLED: AtomicU32 = AtomicU32::new(0);
        fn capture() -> CapturedValue {
            Arc::new(41u32)
        }
        fn install(value: &CapturedValue) -> SlotGuard {
            if let Some(n) = value.downcast_ref::<u32>() {
                LAST_INSTALLED.store(*n + 1, Ordering::SeqCst);
            }
            Box::new(())
        }
        register(Propagator {
            name: "test.ambient.value",
            capture,
            install,
        });
        let ambient = AmbientContext::capture();
        let _guards = ambient.install();
        assert_eq!(LAST_INSTALLED.load(Ordering::SeqCst), 42);
    }
}

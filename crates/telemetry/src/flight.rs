//! The always-on flight recorder: a bounded, sharded ring of recent spans.
//!
//! Unlike the sink (which only collects while tracing is enabled and is
//! drained once per run), the flight recorder keeps the *most recent*
//! spans continuously, in bounded memory, whether or not `ILT_TRACE` is
//! set. `ilt-serve`'s `/debug` endpoints read it to reconstruct a job's
//! span tree after (or while) the job runs, without any job-path locking
//! beyond one short per-shard mutex hold.
//!
//! Layout: a fixed number of shards, each an independent
//! `Mutex<VecDeque<SpanEvent>>` with drop-oldest eviction. A recording
//! thread always lands in the shard picked by its thread ordinal, so two
//! threads contend only when their ordinals collide modulo the shard
//! count. Spans from threads that have exited stay readable until evicted
//! — deliberately, so short-lived connection threads leave their request
//! spans behind without leaking per-thread buffers.
//!
//! Evictions are counted in the process-wide `obs.spans_dropped` counter
//! ([`spans_dropped`]), exported on `/metrics` as
//! `ilt_obs_spans_dropped_total`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::collect::SpanEvent;

/// Number of independent rings. Power of two, sized for "a handful of
/// serve workers plus connection threads" contention, not for huge pools.
const SHARD_COUNT: usize = 8;

/// Default per-shard capacity (spans). Total default memory bound is
/// `SHARD_COUNT * DEFAULT_CAPACITY` events.
pub const DEFAULT_CAPACITY: usize = 4096;

static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static RECORDING: AtomicBool = AtomicBool::new(true);
static SHARDS: OnceLock<Vec<Mutex<VecDeque<SpanEvent>>>> = OnceLock::new();

fn shards() -> &'static [Mutex<VecDeque<SpanEvent>>] {
    SHARDS.get_or_init(|| {
        (0..SHARD_COUNT)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect()
    })
}

/// Records one completed span into its thread's shard, evicting the oldest
/// span of that shard if it is full.
pub(crate) fn record(event: &SpanEvent) {
    if !RECORDING.load(Ordering::Relaxed) {
        return;
    }
    let shard = &shards()[(event.thread as usize) % SHARD_COUNT];
    let cap = CAPACITY.load(Ordering::Relaxed);
    let mut ring = shard.lock().unwrap_or_else(|e| e.into_inner());
    while ring.len() >= cap {
        ring.pop_front();
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
    ring.push_back(event.clone());
}

/// Total spans evicted (drop-oldest) since process start — the
/// `obs.spans_dropped` counter.
pub fn spans_dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Per-shard capacity currently in force.
pub fn capacity() -> usize {
    CAPACITY.load(Ordering::Relaxed)
}

/// Sets the per-shard capacity (minimum 1). Existing shards shrink lazily:
/// oversized rings evict on their next record.
pub fn set_capacity(per_shard: usize) {
    CAPACITY.store(per_shard.max(1), Ordering::Relaxed);
}

/// Turns recording off (or back on). The kill switch exists for overhead
/// measurement (`microbench` compares recording on vs. off) and for
/// embedders that want the old trace-or-nothing behaviour; it is on by
/// default.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether the recorder is currently accepting spans.
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Reads `ILT_OBS_RING` (per-shard span capacity; `0` or `off` disables
/// recording) and applies it. Called by binaries next to
/// [`crate::init_from_env`].
pub fn init_from_env() {
    if let Ok(v) = std::env::var("ILT_OBS_RING") {
        let v = v.trim().to_ascii_lowercase();
        if v == "off" || v == "0" {
            set_recording(false);
        } else if let Ok(n) = v.parse::<usize>() {
            set_capacity(n);
        }
    }
}

/// Everything currently buffered, across all shards, sorted by
/// `(start_ns, id)` like [`crate::snapshot`].
pub fn snapshot() -> Vec<SpanEvent> {
    let mut out = Vec::new();
    for shard in shards() {
        let ring = shard.lock().unwrap_or_else(|e| e.into_inner());
        out.extend(ring.iter().cloned());
    }
    out.sort_by_key(|e| (e.start_ns, e.id));
    out
}

/// All buffered spans belonging to one trace, sorted by `(start_ns, id)`.
/// The `/debug/jobs/{id}/trace` endpoint renders its tree from this.
pub fn trace_spans(trace: u64) -> Vec<SpanEvent> {
    let mut out = Vec::new();
    for shard in shards() {
        let ring = shard.lock().unwrap_or_else(|e| e.into_inner());
        out.extend(ring.iter().filter(|e| e.trace == trace).cloned());
    }
    out.sort_by_key(|e| (e.start_ns, e.id));
    out
}

/// Number of spans currently buffered (all shards).
pub fn len() -> usize {
    shards()
        .iter()
        .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
        .sum()
}

/// Empties every shard (the dropped counter is left alone). For tests and
/// for measurement harnesses that want a clean window.
pub fn clear() {
    for shard in shards() {
        shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

//! Ambient per-thread trace ids.
//!
//! A trace id names one unit of attribution — one serve job, one bench
//! case, one HTTP request — and every span recorded while the id is in
//! scope carries it, so the flight recorder can reassemble a single job's
//! span tree even when concurrent jobs interleave on shared worker
//! threads. The mechanism mirrors `ilt_fault::deadline`: a thread-local
//! set with an RAII [`trace_scope`], re-applied by the tile executor on
//! its worker threads next to the adopted span parent and deadline.
//!
//! Spans opened with *no* ambient trace and no parent (process roots)
//! allocate a fresh trace id for their subtree, so every recorded span has
//! a non-zero trace id.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-unique trace id. Never zero (zero is the "no trace" sentinel in
/// the thread-local slot and on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// Allocates a fresh process-unique trace id (does not install it; pair
/// with [`trace_scope`]).
pub fn next_trace_id() -> TraceId {
    TraceId(NEXT_TRACE.fetch_add(1, Ordering::Relaxed))
}

/// The trace id currently in scope on this thread, if any.
#[inline]
pub fn current_trace() -> Option<TraceId> {
    match CURRENT.with(Cell::get) {
        0 => None,
        id => Some(TraceId(id)),
    }
}

/// Raw accessor for the span layer: `0` means "no trace".
#[inline]
pub(crate) fn current_raw() -> u64 {
    CURRENT.with(Cell::get)
}

/// Non-panicking raw accessor (`0` means "no trace"), safe to call from
/// contexts where thread-local state may be mid-teardown — notably a
/// global allocator hook (`ilt-prof`'s tracking allocator attributes
/// bytes to the ambient trace on every allocation). Reads one `Cell`,
/// never allocates, returns `0` during TLS destruction instead of
/// panicking like [`current_trace`] would.
#[inline]
pub fn current_trace_raw() -> u64 {
    CURRENT.try_with(Cell::get).unwrap_or(0)
}

/// Raw setter for the span layer's root-span auto-trace (which installs a
/// fresh id when a root opens and clears it when the root closes, without
/// a guard object).
#[inline]
pub(crate) fn set_raw(id: u64) {
    CURRENT.with(|cell| cell.set(id));
}

/// Installs `trace` (or clears it with `None`) as the calling thread's
/// ambient trace until the returned guard drops. Scopes nest; the
/// innermost wins. Worker pools re-apply the submitting thread's trace
/// with this, exactly like `ilt_fault::deadline::scope`.
#[must_use = "the trace id is restored when the scope guard drops"]
pub fn trace_scope(trace: Option<TraceId>) -> TraceScope {
    let previous = CURRENT.with(|cell| cell.replace(trace.map_or(0, |t| t.0)));
    TraceScope {
        previous,
        _not_send: PhantomData,
    }
}

/// Guard restoring the thread's previous ambient trace (see
/// [`trace_scope`]).
#[derive(Debug)]
pub struct TraceScope {
    previous: u64,
    /// Must drop on the installing thread (thread-local slot).
    _not_send: PhantomData<*const ()>,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT.with(|cell| cell.set(self.previous));
    }
}

/// Installs (and returns) a freshly allocated trace id in one call — the
/// common "start a new job here" entry point.
#[must_use = "the trace id is restored when the scope guard drops"]
pub fn new_trace_scope() -> (TraceId, TraceScope) {
    let id = next_trace_id();
    (id, trace_scope(Some(id)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_trace_by_default() {
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        {
            let _outer = trace_scope(Some(a));
            assert_eq!(current_trace(), Some(a));
            {
                let _inner = trace_scope(Some(b));
                assert_eq!(current_trace(), Some(b));
                {
                    let _cleared = trace_scope(None);
                    assert_eq!(current_trace(), None);
                }
                assert_eq!(current_trace(), Some(b));
            }
            assert_eq!(current_trace(), Some(a));
        }
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn traces_are_thread_local() {
        let (id, _scope) = new_trace_scope();
        std::thread::spawn(|| {
            assert_eq!(current_trace(), None);
        })
        .join()
        .unwrap();
        assert_eq!(current_trace(), Some(id));
    }
}

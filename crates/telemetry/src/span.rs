//! RAII spans, trace attribution, and cross-thread parent propagation.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::collect::{self, SpanEvent};
use crate::trace::{self, TraceId};
use crate::{enabled, epoch, flight};

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// A structured field value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
}

impl FieldValue {
    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            _ => None,
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// A copyable reference to an open span, used to carry the active span
/// across threads (see [`parent_scope`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRef(pub(crate) u64);

struct Rec {
    id: u64,
    parent: Option<u64>,
    trace: u64,
    /// This span is a process root that allocated its own trace id; clear
    /// the ambient slot (back to "none") when the span closes.
    owns_trace: bool,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
}

/// An open span. Records a [`SpanEvent`] when dropped (or via
/// [`SpanGuard::end`]); always measures wall time, and since the
/// flight recorder is always on, always records — the `ILT_TRACE` flag
/// only decides whether the event additionally reaches the drainable sink.
pub struct SpanGuard {
    start: Instant,
    rec: Option<Rec>,
    /// Guards must drop on the thread that created them (thread-local
    /// span stack), so the type is deliberately `!Send`.
    _not_send: PhantomData<*const ()>,
}

/// Opens a span named `name` under the innermost open span of the current
/// thread, attributed to the ambient trace ([`crate::trace_scope`]). A
/// span with neither a parent nor an ambient trace is a process root and
/// allocates a fresh trace id for its subtree, so every recorded span
/// carries a non-zero trace id.
pub fn span(name: &'static str) -> SpanGuard {
    let start = Instant::now();
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = collect::with_local(|l| {
        let parent = l.stack.last().copied();
        l.stack.push(id);
        l.live.push(id, name);
        parent
    })
    .flatten();
    let mut trace_id = trace::current_raw();
    let mut owns_trace = false;
    if trace_id == 0 && parent.is_none() {
        trace_id = trace::next_trace_id().0;
        // Installed without a guard object: the span clears the slot back
        // to "no trace" (what held before it opened) when it closes.
        trace::set_raw(trace_id);
        owns_trace = true;
    }
    SpanGuard {
        start,
        rec: Some(Rec {
            id,
            parent,
            trace: trace_id,
            owns_trace,
            name,
            fields: Vec::new(),
        }),
        _not_send: PhantomData,
    }
}

impl SpanGuard {
    /// Elapsed wall time of this span so far, in seconds. Works whether or
    /// not telemetry is enabled.
    #[inline]
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Attaches a structured field. The first *identifying* string field
    /// (`label`, `name`, `what`, or `method`) also becomes the span's
    /// frame detail on the live stack the sampling profiler reads, so
    /// flamegraph frames read `stage:coarse s=4` rather than `stage`.
    pub fn add_field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(rec) = &mut self.rec {
            let value = value.into();
            if matches!(key, "label" | "name" | "what" | "method") {
                if let FieldValue::Str(s) = &value {
                    let id = rec.id;
                    collect::with_local(|l| l.live.set_detail(id, s));
                }
            }
            rec.fields.push((key, value));
        }
    }

    /// A reference to this span for cross-thread propagation.
    pub fn span_ref(&self) -> Option<SpanRef> {
        self.rec.as_ref().map(|r| SpanRef(r.id))
    }

    /// The trace id this span is attributed to.
    pub fn trace_id(&self) -> Option<TraceId> {
        match self.rec.as_ref().map(|r| r.trace) {
            Some(t) if t != 0 => Some(TraceId(t)),
            _ => None,
        }
    }

    /// Closes the span now and returns its duration in seconds. The
    /// recorded event uses the *same* duration measurement, so timing
    /// derived from the return value agrees exactly with the trace.
    pub fn end(mut self) -> f64 {
        let dur = self.start.elapsed();
        self.record(dur);
        dur.as_secs_f64()
    }

    fn record(&mut self, dur: Duration) {
        let Some(rec) = self.rec.take() else { return };
        if rec.owns_trace {
            // Restore "no ambient trace", which is what held before this
            // root span opened.
            trace::set_raw(0);
        }
        let start_ns = self
            .start
            .checked_duration_since(epoch())
            .map_or(0, |d| d.as_nanos() as u64);
        let mut rec = Some(rec);
        let recorded = collect::with_local(|l| {
            let rec = rec.take().expect("rec present on first use");
            if let Some(pos) = l.stack.iter().rposition(|&x| x == rec.id) {
                l.stack.truncate(pos);
            }
            l.live.pop(rec.id);
            let event = SpanEvent {
                id: rec.id,
                parent: rec.parent,
                trace: rec.trace,
                name: rec.name,
                fields: rec.fields,
                start_ns,
                dur_ns: dur.as_nanos() as u64,
                thread: l.thread,
            };
            flight::record(&event);
            if enabled() {
                l.events.push(event);
            }
        });
        if recorded.is_none() {
            if let Some(rec) = rec {
                let event = SpanEvent {
                    id: rec.id,
                    parent: rec.parent,
                    trace: rec.trace,
                    name: rec.name,
                    fields: rec.fields,
                    start_ns,
                    dur_ns: dur.as_nanos() as u64,
                    thread: u64::MAX,
                };
                flight::record(&event);
                if enabled() {
                    collect::sink_event(event);
                }
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.rec.is_some() {
            let dur = self.start.elapsed();
            self.record(dur);
        }
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("recording", &self.rec.is_some())
            .finish()
    }
}

/// Records a span for an interval that already happened (`start..end`),
/// without having held a guard over it. The span is attributed to the
/// current thread's innermost open span and ambient trace at the *call*
/// site — `ilt-serve` uses this to backfill a `queue` span under the job
/// root once a worker picks the job up.
pub fn record_span_at(
    name: &'static str,
    start: Instant,
    end: Instant,
    fields: Vec<(&'static str, FieldValue)>,
) {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = collect::with_local(|l| l.stack.last().copied()).flatten();
    let start_ns = start
        .checked_duration_since(epoch())
        .map_or(0, |d| d.as_nanos() as u64);
    let dur_ns = end
        .checked_duration_since(start)
        .map_or(0, |d| d.as_nanos() as u64);
    let thread = collect::with_local(|l| l.thread).unwrap_or(u64::MAX);
    let event = SpanEvent {
        id,
        parent,
        trace: trace::current_raw(),
        name,
        fields,
        start_ns,
        dur_ns,
        thread,
    };
    flight::record(&event);
    if enabled() {
        let pushed = collect::with_local(|l| l.events.push(event.clone()));
        if pushed.is_none() {
            collect::sink_event(event);
        }
    }
}

/// The innermost open span on the current thread, if any.
pub fn current_span() -> Option<SpanRef> {
    collect::with_local(|l| l.stack.last().copied())
        .flatten()
        .map(SpanRef)
}

/// Adopts `parent` as the current thread's span context until the returned
/// guard drops. Worker pools call this so spans opened inside jobs attach
/// to the span that was active where the jobs were submitted.
pub fn parent_scope(parent: Option<SpanRef>) -> ParentScope {
    let id = match parent {
        Some(p) => {
            collect::with_local(|l| l.stack.push(p.0));
            Some(p.0)
        }
        None => None,
    };
    ParentScope {
        id,
        _not_send: PhantomData,
    }
}

/// Guard restoring the thread's span context (see [`parent_scope`]).
#[derive(Debug)]
pub struct ParentScope {
    id: Option<u64>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ParentScope {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            collect::with_local(|l| {
                if let Some(pos) = l.stack.iter().rposition(|&x| x == id) {
                    l.stack.truncate(pos);
                }
            });
            // Worker threads end their useful life when the adopted scope
            // closes; flush now, because thread-local destructors may run
            // after the pool's join is observed (see `flush_thread`).
            collect::flush_thread();
        }
    }
}

//! RAII spans and cross-thread parent propagation.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::collect::{self, SpanEvent};
use crate::{enabled, epoch};

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// A structured field value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
}

impl FieldValue {
    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            _ => None,
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// A copyable reference to an open span, used to carry the active span
/// across threads (see [`parent_scope`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRef(pub(crate) u64);

struct Rec {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
}

/// An open span. Records a [`SpanEvent`] when dropped (or via
/// [`SpanGuard::end`]); always measures wall time, even when telemetry is
/// disabled, so callers can reuse the guard as a stopwatch.
pub struct SpanGuard {
    start: Instant,
    rec: Option<Rec>,
    /// Guards must drop on the thread that created them (thread-local
    /// span stack), so the type is deliberately `!Send`.
    _not_send: PhantomData<*const ()>,
}

/// Opens a span named `name` under the innermost open span of the current
/// thread. When telemetry is disabled this allocates nothing and performs a
/// single relaxed atomic load (plus the `Instant` read).
pub fn span(name: &'static str) -> SpanGuard {
    let start = Instant::now();
    if !enabled() {
        return SpanGuard {
            start,
            rec: None,
            _not_send: PhantomData,
        };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = collect::with_local(|l| {
        let parent = l.stack.last().copied();
        l.stack.push(id);
        parent
    })
    .flatten();
    SpanGuard {
        start,
        rec: Some(Rec {
            id,
            parent,
            name,
            fields: Vec::new(),
        }),
        _not_send: PhantomData,
    }
}

impl SpanGuard {
    /// Elapsed wall time of this span so far, in seconds. Works whether or
    /// not telemetry is enabled.
    #[inline]
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Attaches a structured field (no-op when the span is not recording).
    pub fn add_field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(rec) = &mut self.rec {
            rec.fields.push((key, value.into()));
        }
    }

    /// A reference to this span for cross-thread propagation, if recording.
    pub fn span_ref(&self) -> Option<SpanRef> {
        self.rec.as_ref().map(|r| SpanRef(r.id))
    }

    /// Closes the span now and returns its duration in seconds. The
    /// recorded event uses the *same* duration measurement, so timing
    /// derived from the return value agrees exactly with the trace.
    pub fn end(mut self) -> f64 {
        let dur = self.start.elapsed();
        self.record(dur);
        dur.as_secs_f64()
    }

    fn record(&mut self, dur: Duration) {
        let Some(rec) = self.rec.take() else { return };
        let start_ns = self
            .start
            .checked_duration_since(epoch())
            .map_or(0, |d| d.as_nanos() as u64);
        let mut rec = Some(rec);
        let recorded = collect::with_local(|l| {
            let rec = rec.take().expect("rec present on first use");
            if let Some(pos) = l.stack.iter().rposition(|&x| x == rec.id) {
                l.stack.truncate(pos);
            }
            let thread = l.thread;
            l.events.push(SpanEvent {
                id: rec.id,
                parent: rec.parent,
                name: rec.name,
                fields: rec.fields,
                start_ns,
                dur_ns: dur.as_nanos() as u64,
                thread,
            });
        });
        if recorded.is_none() {
            if let Some(rec) = rec {
                collect::sink_event(SpanEvent {
                    id: rec.id,
                    parent: rec.parent,
                    name: rec.name,
                    fields: rec.fields,
                    start_ns,
                    dur_ns: dur.as_nanos() as u64,
                    thread: u64::MAX,
                });
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.rec.is_some() {
            let dur = self.start.elapsed();
            self.record(dur);
        }
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("recording", &self.rec.is_some())
            .finish()
    }
}

/// The innermost open span on the current thread, if any.
pub fn current_span() -> Option<SpanRef> {
    if !enabled() {
        return None;
    }
    collect::with_local(|l| l.stack.last().copied())
        .flatten()
        .map(SpanRef)
}

/// Adopts `parent` as the current thread's span context until the returned
/// guard drops. Worker pools call this so spans opened inside jobs attach
/// to the span that was active where the jobs were submitted.
pub fn parent_scope(parent: Option<SpanRef>) -> ParentScope {
    let id = match parent {
        Some(p) if enabled() => {
            collect::with_local(|l| l.stack.push(p.0));
            Some(p.0)
        }
        _ => None,
    };
    ParentScope {
        id,
        _not_send: PhantomData,
    }
}

/// Guard restoring the thread's span context (see [`parent_scope`]).
#[derive(Debug)]
pub struct ParentScope {
    id: Option<u64>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ParentScope {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            collect::with_local(|l| {
                if let Some(pos) = l.stack.iter().rposition(|&x| x == id) {
                    l.stack.truncate(pos);
                }
            });
            // Worker threads end their useful life when the adopted scope
            // closes; flush now, because thread-local destructors may run
            // after the pool's join is observed (see `flush_thread`).
            collect::flush_thread();
        }
    }
}

//! # ilt-telemetry
//!
//! Zero-dependency observability for the multigrid-Schwarz ILT workspace:
//! hierarchical RAII spans, counters, and log-bucketed histograms, with
//! human-readable, JSONL, and Chrome `trace_event` exporters.
//!
//! ## Model
//!
//! * **Spans** form a tree (`flow → stage → job → tile → solve`): a
//!   [`SpanGuard`] opens a span on creation and records it when dropped (or
//!   when [`SpanGuard::end`] is called). The parent is the innermost span
//!   open on the current thread; worker pools carry the
//!   caller's span to worker threads with [`parent_scope`]. Spans carry
//!   structured key/value [`FieldValue`] fields.
//! * **Counters** ([`counter_add`]) and **histograms** ([`record_value`],
//!   power-of-two buckets with p50/p95/max summaries) cover hot paths where
//!   per-event spans would be too heavy (FFT calls, litho simulations,
//!   solver iterations, pixels assembled).
//! * Everything is collected **per thread** (no locks on the hot path) and
//!   merged into a process-global sink when the thread flushes — via
//!   [`flush_thread`], automatically when a [`ParentScope`] drops, or at
//!   thread exit as a backstop; [`drain`] takes the merged [`Telemetry`]
//!   snapshot.
//! * Every span carries a **trace id** attributing it to one job, bench
//!   case, or request: install one with [`trace_scope`] (an ambient
//!   thread-local, same pattern as `ilt_fault::deadline`), carry it to
//!   workers with [`current_trace`], and spans opened with neither a
//!   parent nor an ambient trace mint their own.
//!
//! ## Gating
//!
//! Spans are **always on**: every closed span lands in the bounded
//! [`flight`] recorder (drop-oldest ring, a few thousand recent spans), so
//! live introspection — `ilt-serve`'s `/debug/jobs/{id}/trace` — works
//! without restarting with tracing enabled. The `ILT_TRACE` flag
//! ([`init_from_env`]/[`set_enabled`]) gates the *unbounded* collection:
//! whether spans also reach the drainable sink, and whether counters,
//! gauges, and histograms record at all. When disabled those entry points
//! are no-ops behind a single relaxed atomic load, and [`drain`] stays
//! empty. [`SpanGuard`]s measure wall time regardless (an `Instant` is a
//! plain value), so flows derive their stage timings from the same guards
//! unconditionally.
//!
//! ## Example
//!
//! ```
//! use ilt_telemetry as tele;
//!
//! tele::set_enabled(true);
//! {
//!     let mut flow = tele::span(tele::names::FLOW);
//!     flow.add_field("name", "demo");
//!     let _stage = tele::span(tele::names::STAGE);
//!     tele::counter_add("fft.forward", 3);
//! }
//! let t = tele::drain();
//! tele::set_enabled(false);
//! assert_eq!(t.events.len(), 2);
//! assert_eq!(t.counters["fft.forward"], 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ambient;
mod collect;
mod export;
pub mod flight;
pub mod json;
pub mod live;
mod metrics;
pub mod slo;
mod span;
mod trace;

pub use ambient::{AmbientContext, AmbientGuards};
pub use collect::{drain, flush_thread, snapshot, trace_counters, SpanEvent, Telemetry};
pub use export::{span_forest_json, FlowSummary, LatencyBudget, StageSummary};
pub use live::{sample_stacks, LiveFrame};
pub use metrics::{counter_add, gauge_add, gauge_set, record_value, Histogram};
pub use span::{
    current_span, parent_scope, record_span_at, span, FieldValue, ParentScope, SpanGuard, SpanRef,
};
pub use trace::{
    current_trace, current_trace_raw, new_trace_scope, next_trace_id, trace_scope, TraceId,
    TraceScope,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Conventional span names shared by the workspace, so exporters can
/// recognise the flow/stage/tile hierarchy without string coupling.
pub mod names {
    /// A whole optimisation flow (field `name` holds the flow identifier).
    pub const FLOW: &str = "flow";
    /// One stage of a flow (field `label` holds the stage label).
    pub const STAGE: &str = "stage";
    /// One executor job (field `job` holds the index).
    pub const JOB: &str = "job";
    /// One per-tile unit of work inside a stage (field `tile`).
    pub const TILE: &str = "tile";
    /// The sequential assembly that follows a stage's tile solves.
    pub const ASSEMBLY: &str = "assembly";
    /// A single-tile solver invocation.
    pub const SOLVE: &str = "solve";
    /// One served request in `ilt-serve` (fields `method`, `path`,
    /// `status`); job execution spans nest underneath it, so traces and
    /// diagnostics work unchanged in server mode.
    pub const REQUEST: &str = "request";
    /// A convergence anomaly detected by `ilt-diag` (fields `kind`,
    /// `flow`, `stage`, `tile`, `iteration`, `value`). Recorded as a
    /// zero-length span so anomalies sit inside the span tree at the
    /// moment they were detected.
    pub const ANOMALY: &str = "anomaly";
    /// A tile falling back to its coarse-grid mask after its fine-grid
    /// solve failed every retry (fields `flow`, `stage`, `tile`, `error`).
    /// Recorded as a zero-length span by `ilt-diag`.
    pub const DEGRADED: &str = "degraded";
    /// One serve job's execution, from worker pickup to completion
    /// (fields `job`, `target`, `method`, `scale`). The root of the job's
    /// trace; `queue` and `session` spans nest underneath.
    pub const SERVE_JOB: &str = "serve.job";
    /// Time a serve job spent queued before a worker picked it up
    /// (field `job`). Backfilled with [`crate::record_span_at`].
    pub const QUEUE: &str = "queue";
    /// One `Session::run_method` invocation (field `method`): the
    /// cache-amortised solve a serve job or bench case runs.
    pub const SESSION: &str = "session";
    /// Expensive one-off construction: litho kernel-bank or
    /// inspection-system builds (field `what`).
    pub const BUILD: &str = "build";
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Returns whether telemetry collection is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables collection. Prefer [`init_from_env`] in binaries;
/// this entry point exists for tests and embedding.
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Reads `ILT_TRACE` and enables collection when it is `1`, `true`, `on`,
/// or `yes` (case-insensitive). Returns the resulting enabled state.
pub fn init_from_env() -> bool {
    let on = std::env::var("ILT_TRACE")
        .map(|v| {
            let v = v.trim().to_ascii_lowercase();
            matches!(v.as_str(), "1" | "true" | "on" | "yes")
        })
        .unwrap_or(false);
    set_enabled(on);
    on
}

/// The process-wide time origin all span timestamps are relative to.
pub(crate) fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

//! Counters and log-bucketed histograms.

use crate::collect::with_local;
use crate::enabled;

/// Adds `delta` to the named counter. No-op (one relaxed atomic load) when
/// telemetry is disabled; otherwise touches only the thread-local buffer.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_local(|l| *l.counters.entry(name).or_insert(0) += delta);
}

/// Records `value` into the named histogram. No-op when disabled.
#[inline]
pub fn record_value(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    with_local(|l| {
        l.histograms
            .entry(name)
            .or_insert_with(Histogram::new)
            .record(value);
    });
}

const BUCKETS: usize = 65;

/// A histogram over `u64` values with power-of-two buckets: bucket 0 holds
/// exactly the value 0 and bucket `b ≥ 1` holds `[2^(b-1), 2^b - 1]`.
/// Quantiles are approximate (bucket upper bound); `min`/`max`/`sum` are
/// exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    fn bucket_upper(bucket: usize) -> u64 {
        if bucket == 0 {
            0
        } else if bucket >= 64 {
            u64::MAX
        } else {
            (1u64 << bucket) - 1
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 if empty).
    #[inline]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// containing the `⌈q·count⌉`-th smallest sample (clamped by the exact
    /// max). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_upper(b).min(self.max);
            }
        }
        self.max
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

//! Counters, gauges, and log-bucketed histograms.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::collect::with_local;
use crate::{enabled, trace};

/// Adds `delta` to the named counter. No-op (one relaxed atomic load) when
/// telemetry is disabled; otherwise touches only the thread-local buffer.
/// When an ambient trace is in scope ([`crate::trace_scope`]), the
/// increment is additionally attributed to that trace (see
/// [`crate::trace_counters`]).
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_local(|l| {
        *l.counters.entry(name).or_insert(0) += delta;
        let trace = trace::current_raw();
        if trace != 0 {
            *l.trace_counters.entry((trace, name)).or_insert(0) += delta;
        }
    });
}

/// Last-written-wins gauges. Unlike counters they represent *current*
/// state (queue depth, in-flight jobs), so they live in one small global
/// registry rather than per-thread buffers: writers are rare (admission
/// and completion paths, not solver loops) and readers want the latest
/// value, not a merge.
static GAUGES: Mutex<BTreeMap<&'static str, f64>> = Mutex::new(BTreeMap::new());

/// Sets the named gauge to `value`. No-op when telemetry is disabled.
pub fn gauge_set(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    let mut gauges = GAUGES.lock().unwrap_or_else(|e| e.into_inner());
    gauges.insert(name, value);
}

/// Adds `delta` (may be negative) to the named gauge, creating it at `0`.
/// No-op when telemetry is disabled.
pub fn gauge_add(name: &'static str, delta: f64) {
    if !enabled() {
        return;
    }
    let mut gauges = GAUGES.lock().unwrap_or_else(|e| e.into_inner());
    *gauges.entry(name).or_insert(0.0) += delta;
}

/// Current gauge values (copied; the registry keeps them).
pub(crate) fn gauges_snapshot() -> BTreeMap<String, f64> {
    let gauges = GAUGES.lock().unwrap_or_else(|e| e.into_inner());
    gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

/// Current gauge values, clearing the registry (for [`crate::drain`]).
pub(crate) fn gauges_take() -> BTreeMap<String, f64> {
    let mut gauges = GAUGES.lock().unwrap_or_else(|e| e.into_inner());
    std::mem::take(&mut *gauges)
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

/// Records `value` into the named histogram. No-op when disabled.
#[inline]
pub fn record_value(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    with_local(|l| {
        l.histograms
            .entry(name)
            .or_insert_with(Histogram::new)
            .record(value);
    });
}

const BUCKETS: usize = 65;

/// A histogram over `u64` values with power-of-two buckets: bucket 0 holds
/// exactly the value 0 and bucket `b ≥ 1` holds `[2^(b-1), 2^b - 1]`.
/// Quantiles are approximate (bucket upper bound); `min`/`max`/`sum` are
/// exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    fn bucket_upper(bucket: usize) -> u64 {
        if bucket == 0 {
            0
        } else if bucket >= 64 {
            u64::MAX
        } else {
            (1u64 << bucket) - 1
        }
    }

    fn bucket_lower(bucket: usize) -> u64 {
        if bucket == 0 {
            0
        } else {
            1u64 << (bucket - 1)
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 if empty).
    #[inline]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// containing the `⌈q·count⌉`-th smallest sample (clamped by the exact
    /// max). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Quantile with linear interpolation inside the containing bucket:
    /// samples in a bucket are assumed evenly spread over
    /// `[bucket_lower, bucket_upper]`, and the `⌈q·count⌉`-th smallest
    /// sample's position within the bucket picks the point on that span.
    /// The result is clamped to the exact `[min, max]` so single-sample and
    /// tail quantiles stay truthful. Returns 0.0 for an empty histogram.
    pub fn quantile_interpolated(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                let lo = Self::bucket_lower(b) as f64;
                let hi = Self::bucket_upper(b).min(self.max) as f64;
                // Rank within the bucket, 1-based; map rank r of n to the
                // fraction (r - 1) / max(n - 1, 1) so the first sample sits
                // at the lower bound and the last at the upper bound.
                let rank = (target - seen) as f64;
                let frac = if n > 1 {
                    (rank - 1.0) / (n as f64 - 1.0)
                } else {
                    0.0
                };
                let v = lo + frac * (hi - lo).max(0.0);
                return v.clamp(self.min() as f64, self.max as f64);
            }
            seen += n;
        }
        self.max as f64
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the interpolation formula: on a dense uniform 1..=100 run the
    /// evenly-spread-within-bucket assumption is exact, so the interpolated
    /// percentiles land on the true order statistics (the bucket-upper
    /// `quantile` would report 63/100/100 here).
    #[test]
    fn interpolated_percentiles_are_exact_on_uniform_data() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile_interpolated(0.5), 50.0);
        assert_eq!(h.quantile_interpolated(0.95), 95.0);
        assert_eq!(h.quantile_interpolated(0.99), 99.0);
        assert_eq!(h.quantile_interpolated(1.0), 100.0);
        assert_eq!(h.quantile_interpolated(0.0), 1.0);
    }

    #[test]
    fn interpolated_quantile_clamps_to_observed_range() {
        let mut h = Histogram::new();
        h.record(7);
        // One sample in bucket [4, 7]: interpolation alone would report the
        // lower bound 4; the clamp to [min, max] restores the exact value.
        assert_eq!(h.quantile_interpolated(0.5), 7.0);
        assert_eq!(h.quantile_interpolated(1.0), 7.0);
        assert_eq!(Histogram::new().quantile_interpolated(0.5), 0.0);
    }

    #[test]
    fn interpolated_quantile_spreads_within_bucket() {
        let mut h = Histogram::new();
        // Three samples in bucket [8, 15]: ranks map to lo / mid / hi.
        for v in [8u64, 12, 15] {
            h.record(v);
        }
        assert_eq!(h.quantile_interpolated(1.0 / 3.0), 8.0);
        assert_eq!(h.quantile_interpolated(2.0 / 3.0), 11.5);
        assert_eq!(h.quantile_interpolated(1.0), 15.0);
    }
}

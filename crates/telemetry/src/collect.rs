//! Per-thread buffers and the process-global sink they merge into.
//!
//! The hot path (span drop, counter bump) only touches a `thread_local!`
//! buffer; the global mutex is taken once per thread lifetime (at thread
//! exit) and once per [`drain`].

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::live::LiveStack;
use crate::metrics::Histogram;
use crate::span::FieldValue;

/// One completed span, as stored and exported.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Process-unique span id.
    pub id: u64,
    /// Parent span id, if the span had an enclosing span on its thread.
    pub parent: Option<u64>,
    /// Trace id attributing the span to one job/case/request (see
    /// [`crate::trace_scope`]); `0` only for events predating trace
    /// support in serialized traces — live spans always carry one.
    pub trace: u64,
    /// Span name (one of [`crate::names`] for workspace spans).
    pub name: &'static str,
    /// Structured key/value fields.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small per-thread ordinal (0 = first thread that recorded).
    pub thread: u64,
}

impl SpanEvent {
    /// Duration in seconds.
    #[inline]
    pub fn seconds(&self) -> f64 {
        self.dur_ns as f64 / 1e9
    }

    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Everything one [`drain`] call collected: completed spans plus merged
/// counters, gauges, and histograms.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Completed spans, ordered by start time.
    pub events: Vec<SpanEvent>,
    /// Merged named counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-written named gauges (see [`crate::gauge_set`]).
    pub gauges: BTreeMap<String, f64>,
    /// Merged named histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

impl Telemetry {
    /// Returns `true` if nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// The number of completed spans with the given name.
    pub fn span_count(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.name == name).count()
    }
}

#[derive(Default)]
struct Sink {
    events: Vec<SpanEvent>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);
static THREAD_SEQ: AtomicU64 = AtomicU64::new(0);

/// One trace's accumulated counter totals: `(trace, name -> total)`.
type TraceCounterEntry = (u64, BTreeMap<String, u64>);

/// Per-trace counter totals, so `/debug/jobs/{id}/trace` can say "this
/// job bumped `flow.tiles_degraded` once" without a process-wide diff.
/// Bounded drop-oldest by trace, like the flight recorder.
static TRACE_COUNTERS: Mutex<Option<VecDeque<TraceCounterEntry>>> = Mutex::new(None);

/// Maximum distinct traces retained in the per-trace counter registry.
const TRACE_COUNTER_TRACES: usize = 256;

pub(crate) struct LocalBuf {
    pub thread: u64,
    /// Stack of open span ids (innermost last); adopted parents from
    /// [`crate::parent_scope`] are pushed here too.
    pub stack: Vec<u64>,
    /// Shared copy of the open-span stack, readable by the sampling
    /// profiler (see [`crate::live`]). Unlike `stack`, adopted parents
    /// are not mirrored here.
    pub live: Arc<LiveStack>,
    pub events: Vec<SpanEvent>,
    pub counters: HashMap<&'static str, u64>,
    /// Counter increments attributed to an ambient trace, keyed
    /// `(trace, name)`.
    pub trace_counters: HashMap<(u64, &'static str), u64>,
    pub histograms: HashMap<&'static str, Histogram>,
}

impl LocalBuf {
    fn new() -> Self {
        let thread = THREAD_SEQ.fetch_add(1, Ordering::Relaxed);
        LocalBuf {
            thread,
            stack: Vec::new(),
            live: LiveStack::register(thread),
            events: Vec::new(),
            counters: HashMap::new(),
            trace_counters: HashMap::new(),
            histograms: HashMap::new(),
        }
    }

    fn flush(&mut self) {
        if !self.trace_counters.is_empty() {
            let mut guard = TRACE_COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
            let registry = guard.get_or_insert_with(VecDeque::new);
            for ((trace, name), v) in self.trace_counters.drain() {
                let idx = match registry.iter().position(|(t, _)| *t == trace) {
                    Some(idx) => idx,
                    None => {
                        while registry.len() >= TRACE_COUNTER_TRACES {
                            registry.pop_front();
                        }
                        registry.push_back((trace, BTreeMap::new()));
                        registry.len() - 1
                    }
                };
                *registry[idx].1.entry(name.to_string()).or_insert(0) += v;
            }
        }
        if self.events.is_empty() && self.counters.is_empty() && self.histograms.is_empty() {
            return;
        }
        let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
        let sink = sink.get_or_insert_with(Sink::default);
        sink.events.append(&mut self.events);
        for (name, v) in self.counters.drain() {
            *sink.counters.entry(name.to_string()).or_insert(0) += v;
        }
        for (name, h) in self.histograms.drain() {
            sink.histograms
                .entry(name.to_string())
                .or_default()
                .merge(&h);
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf::new());
}

/// Runs `f` with the calling thread's buffer; returns `None` if the buffer
/// is no longer accessible (thread teardown).
pub(crate) fn with_local<R>(f: impl FnOnce(&mut LocalBuf) -> R) -> Option<R> {
    LOCAL.try_with(|l| f(&mut l.borrow_mut())).ok()
}

/// Flushes the calling thread's buffered telemetry into the global sink.
///
/// Thread-local destructors also flush, but they may run *after* a
/// `std::thread::scope` (or a `join`) observes the thread as finished, so
/// worker pools must flush explicitly before their threads are joined.
/// [`crate::ParentScope`] does this on drop; call this directly from
/// workers that do not adopt a parent span.
pub fn flush_thread() {
    let _ = with_local(LocalBuf::flush);
}

/// Fallback for events produced while the thread buffer is unavailable.
pub(crate) fn sink_event(event: SpanEvent) {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    sink.get_or_insert_with(Sink::default).events.push(event);
}

/// Counter totals attributed to `trace` across all flushed threads (see
/// [`crate::counter_add`]; attribution requires an ambient trace and
/// enabled collection). Returns an empty map for unknown traces.
pub fn trace_counters(trace: u64) -> BTreeMap<String, u64> {
    let _ = with_local(LocalBuf::flush);
    let guard = TRACE_COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    guard
        .as_ref()
        .and_then(|registry| registry.iter().find(|(t, _)| *t == trace))
        .map(|(_, counters)| counters.clone())
        .unwrap_or_default()
}

/// A non-destructive copy of everything flushed so far: the calling
/// thread's buffer plus the global sink. Unlike [`drain`], the sink keeps
/// its contents, so long-lived processes (the `ilt-serve` `/metrics`
/// endpoint) can expose running totals while a final [`drain`] at shutdown
/// still sees the full run. Buffers on *other* live threads are not
/// visible until those threads flush (see [`flush_thread`]).
pub fn snapshot() -> Telemetry {
    let _ = with_local(LocalBuf::flush);
    let gauges = crate::metrics::gauges_snapshot();
    let guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let mut t = match guard.as_ref() {
        Some(sink) => Telemetry {
            events: sink.events.clone(),
            counters: sink.counters.clone(),
            gauges,
            histograms: sink.histograms.clone(),
        },
        None => {
            return Telemetry {
                gauges,
                ..Telemetry::default()
            }
        }
    };
    drop(guard);
    t.events.sort_by_key(|e| (e.start_ns, e.id));
    t
}

/// Takes everything collected so far: the calling thread's buffer plus the
/// global sink (which worker threads flushed into when they exited). Call
/// from the thread that drove the work, after its worker threads joined.
/// Gauges are taken too (the registry is cleared), so back-to-back runs in
/// one process start clean.
pub fn drain() -> Telemetry {
    let _ = with_local(LocalBuf::flush);
    let gauges = crate::metrics::gauges_take();
    let mut guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let sink = match guard.take() {
        Some(sink) => sink,
        None => {
            return Telemetry {
                gauges,
                ..Telemetry::default()
            }
        }
    };
    drop(guard);
    let mut t = Telemetry {
        events: sink.events,
        counters: sink.counters,
        gauges,
        histograms: sink.histograms,
    };
    t.events.sort_by_key(|e| (e.start_ns, e.id));
    t
}

//! Exporters over a drained [`Telemetry`] snapshot: a human-readable tree,
//! a JSONL event log, the Chrome `trace_event` format, and per-flow
//! summaries that mirror the workspace's `StageTiming` shape.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::collect::{SpanEvent, Telemetry};
use crate::json;
use crate::metrics::Histogram;
use crate::names;

/// Summary of one stage span, with tile/assembly attribution derived from
/// its descendant spans.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSummary {
    /// Stage label (the `label` field of the stage span).
    pub label: String,
    /// Wall time of the stage span in seconds.
    pub seconds: f64,
    /// Number of descendant tile spans.
    pub tile_count: usize,
    /// Total seconds across descendant tile spans.
    pub tile_seconds: f64,
    /// Total seconds across descendant assembly spans.
    pub assembly_seconds: f64,
    /// Log-bucketed histogram of the descendant tile span durations in
    /// microseconds — the source of the stage's p50/p95/p99 exports.
    pub tile_us: Histogram,
}

impl StageSummary {
    /// Interpolated percentiles `(p50, p95, p99)` of the per-tile wall
    /// time in microseconds (0.0 for stages without tile spans).
    pub fn tile_us_percentiles(&self) -> (f64, f64, f64) {
        (
            self.tile_us.quantile_interpolated(0.5),
            self.tile_us.quantile_interpolated(0.95),
            self.tile_us.quantile_interpolated(0.99),
        )
    }
}

/// Summary of one flow span and its stages.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSummary {
    /// Flow name (the `name` field of the flow span).
    pub name: String,
    /// Wall time of the flow span in seconds.
    pub seconds: f64,
    /// One entry per stage span under the flow, in start order.
    pub stages: Vec<StageSummary>,
}

/// Span-tree index: indices of root events plus a parent-id → child-indices
/// map, both in start order (events are sorted by [`crate::drain`]).
struct TreeIndex {
    roots: Vec<usize>,
    children: HashMap<u64, Vec<usize>>,
}

fn index_tree(events: &[SpanEvent]) -> TreeIndex {
    let ids: std::collections::HashSet<u64> = events.iter().map(|e| e.id).collect();
    let mut roots = Vec::new();
    let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        match e.parent {
            Some(p) if ids.contains(&p) => children.entry(p).or_default().push(i),
            _ => roots.push(i),
        }
    }
    TreeIndex { roots, children }
}

/// A short display label: the span name plus its identifying field, e.g.
/// `flow(ours)`, `stage(refine color 1)`, `tile(3)`.
fn display_label(e: &SpanEvent) -> String {
    let tag = match e.name {
        names::FLOW => e.field("name").and_then(|v| v.as_str()).map(str::to_string),
        names::STAGE => e
            .field("label")
            .and_then(|v| v.as_str())
            .map(str::to_string),
        names::JOB => e
            .field("job")
            .and_then(|v| v.as_u64())
            .map(|v| v.to_string()),
        names::TILE => e
            .field("tile")
            .and_then(|v| v.as_u64())
            .map(|v| v.to_string()),
        names::SOLVE => e
            .field("solver")
            .and_then(|v| v.as_str())
            .map(str::to_string),
        names::ANOMALY => e.field("kind").and_then(|v| v.as_str()).map(str::to_string),
        _ => None,
    };
    match tag {
        Some(tag) => format!("{}({})", e.name, tag),
        None => e.name.to_string(),
    }
}

fn push_event_json(out: &mut String, e: &SpanEvent) {
    out.push_str("{\"type\":\"span\",\"id\":");
    let _ = write!(out, "{}", e.id);
    out.push_str(",\"parent\":");
    match e.parent {
        Some(p) => {
            let _ = write!(out, "{p}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"name\":");
    json::push_str_literal(out, e.name);
    out.push_str(",\"thread\":");
    let _ = write!(out, "{}", e.thread);
    out.push_str(",\"start_us\":");
    let _ = write!(out, "{}", e.start_ns / 1_000);
    out.push_str(",\"dur_us\":");
    let _ = write!(out, "{}", e.dur_ns / 1_000);
    out.push_str(",\"fields\":");
    json::push_fields_object(out, &e.fields);
    out.push('}');
}

impl Telemetry {
    /// Renders the span tree (with counters and histograms) as an indented,
    /// human-readable report.
    pub fn render_tree(&self) -> String {
        let tree = index_tree(&self.events);
        let mut out = String::new();
        out.push_str("spans:\n");
        for &root in &tree.roots {
            render_node(&mut out, &self.events, &tree, root, 1);
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name} = {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name}: count={} p50={} p95={} p99={} max={} mean={:.1}",
                    h.count(),
                    h.quantile(0.5),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.max(),
                    h.mean()
                );
            }
        }
        out
    }

    /// Serialises the snapshot as JSON Lines: one `span` record per span
    /// (start order), then one `counter` record per counter and one
    /// `histogram` record per histogram.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            push_event_json(&mut out, e);
            out.push('\n');
        }
        for (name, v) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            json::push_str_literal(&mut out, name);
            let _ = write!(out, ",\"value\":{v}}}");
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            json::push_str_literal(&mut out, name);
            let _ = write!(
                out,
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.quantile(0.5),
                h.quantile(0.95),
                h.quantile(0.99)
            );
            out.push('\n');
        }
        out
    }

    /// Renders counters and histograms in the Prometheus text exposition
    /// format (version 0.0.4), the shape `GET /metrics` endpoints serve.
    ///
    /// Metric names are the workspace's dotted counter/histogram names with
    /// every non-alphanumeric character mapped to `_` and an `ilt_` prefix
    /// (so `fft.forward` becomes `ilt_fft_forward`). Counters get a
    /// `_total` suffix; histograms are exported as `_count`/`_sum` plus
    /// `quantile`-labelled summary samples. Spans are not exported — they
    /// belong to traces, not scrape targets.
    pub fn to_prometheus(&self) -> String {
        fn metric_name(raw: &str) -> String {
            let mut name = String::with_capacity(raw.len() + 4);
            name.push_str("ilt_");
            for c in raw.chars() {
                name.push(if c.is_ascii_alphanumeric() { c } else { '_' });
            }
            name
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let m = metric_name(name);
            let _ = writeln!(out, "# TYPE {m}_total counter");
            let _ = writeln!(out, "{m}_total {v}");
        }
        for (name, h) in &self.histograms {
            let m = metric_name(name);
            let _ = writeln!(out, "# TYPE {m} summary");
            for (q, v) in [
                (0.5, h.quantile_interpolated(0.5)),
                (0.95, h.quantile_interpolated(0.95)),
                (0.99, h.quantile_interpolated(0.99)),
            ] {
                let _ = writeln!(out, "{m}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{m}_sum {}", h.sum());
            let _ = writeln!(out, "{m}_count {}", h.count());
        }
        out
    }

    /// Serialises the spans in the Chrome `trace_event` JSON format
    /// (load the file in `chrome://tracing` or Perfetto).
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::push_str_literal(&mut out, &display_label(e));
            out.push_str(",\"cat\":");
            json::push_str_literal(&mut out, e.name);
            let _ = write!(
                out,
                ",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":",
                e.thread,
                e.start_ns / 1_000,
                e.dur_ns / 1_000
            );
            json::push_fields_object(&mut out, &e.fields);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Serialises the span tree as nested JSON (used inside `report.json`).
    pub fn span_tree_json(&self) -> String {
        let tree = index_tree(&self.events);
        let mut out = String::new();
        push_subtree_json(&mut out, &self.events, &tree, &tree.roots);
        out
    }

    /// Derives per-flow summaries from the span tree: every `flow` span
    /// becomes a [`FlowSummary`], its child `stage` spans become
    /// [`StageSummary`] entries, and tile/assembly attribution comes from
    /// descendant `tile`/`assembly` spans (tiles may sit below `job` spans
    /// introduced by the executor).
    pub fn flow_summaries(&self) -> Vec<FlowSummary> {
        let tree = index_tree(&self.events);
        let mut flows = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            if e.name != names::FLOW {
                continue;
            }
            let name = e
                .field("name")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string();
            let mut stages = Vec::new();
            for &s in tree.children.get(&e.id).map_or(&[][..], |v| &v[..]) {
                let se = &self.events[s];
                if se.name != names::STAGE {
                    continue;
                }
                let label = se
                    .field("label")
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_string();
                let mut acc = StageAcc::default();
                sum_descendants(&self.events, &tree, s, &mut acc);
                stages.push(StageSummary {
                    label,
                    seconds: se.seconds(),
                    tile_count: acc.tile_count,
                    tile_seconds: acc.tile_seconds,
                    assembly_seconds: acc.assembly_seconds,
                    tile_us: acc.tile_us,
                });
            }
            flows.push(FlowSummary {
                name,
                seconds: self.events[i].seconds(),
                stages,
            });
        }
        flows
    }
}

fn render_node(out: &mut String, events: &[SpanEvent], tree: &TreeIndex, i: usize, depth: usize) {
    let e = &events[i];
    for _ in 0..depth {
        out.push_str("  ");
    }
    let _ = writeln!(
        out,
        "{} {:.3} ms (t{})",
        display_label(e),
        e.dur_ns as f64 / 1e6,
        e.thread
    );
    if let Some(kids) = tree.children.get(&e.id) {
        for &k in kids {
            render_node(out, events, tree, k, depth + 1);
        }
    }
}

fn push_subtree_json(out: &mut String, events: &[SpanEvent], tree: &TreeIndex, nodes: &[usize]) {
    out.push('[');
    for (n, &i) in nodes.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        let e = &events[i];
        out.push_str("{\"name\":");
        json::push_str_literal(out, e.name);
        let _ = write!(out, ",\"thread\":{},\"seconds\":", e.thread);
        json::push_f64(out, e.seconds());
        out.push_str(",\"fields\":");
        json::push_fields_object(out, &e.fields);
        out.push_str(",\"children\":");
        match tree.children.get(&e.id) {
            Some(kids) => push_subtree_json(out, events, tree, kids),
            None => out.push_str("[]"),
        }
        out.push('}');
    }
    out.push(']');
}

/// Tile/assembly attribution accumulated over a stage's descendants.
#[derive(Default)]
struct StageAcc {
    tile_count: usize,
    tile_seconds: f64,
    assembly_seconds: f64,
    tile_us: Histogram,
}

fn sum_descendants(events: &[SpanEvent], tree: &TreeIndex, i: usize, acc: &mut StageAcc) {
    if let Some(kids) = tree.children.get(&events[i].id) {
        for &k in kids {
            match events[k].name {
                names::TILE => {
                    acc.tile_count += 1;
                    acc.tile_seconds += events[k].seconds();
                    acc.tile_us.record(events[k].dur_ns / 1_000);
                }
                names::ASSEMBLY => acc.assembly_seconds += events[k].seconds(),
                _ => {}
            }
            sum_descendants(events, tree, k, acc);
        }
    }
}

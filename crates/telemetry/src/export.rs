//! Exporters over a drained [`Telemetry`] snapshot: a human-readable tree,
//! a JSONL event log, the Chrome `trace_event` format, and per-flow
//! summaries that mirror the workspace's `StageTiming` shape.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::collect::{SpanEvent, Telemetry};
use crate::json;
use crate::metrics::Histogram;
use crate::names;

/// Summary of one stage span, with tile/assembly attribution derived from
/// its descendant spans.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSummary {
    /// Stage label (the `label` field of the stage span).
    pub label: String,
    /// Wall time of the stage span in seconds.
    pub seconds: f64,
    /// Number of descendant tile spans.
    pub tile_count: usize,
    /// Total seconds across descendant tile spans.
    pub tile_seconds: f64,
    /// Total seconds across descendant assembly spans.
    pub assembly_seconds: f64,
    /// Log-bucketed histogram of the descendant tile span durations in
    /// microseconds — the source of the stage's p50/p95/p99 exports.
    pub tile_us: Histogram,
}

impl StageSummary {
    /// Interpolated percentiles `(p50, p95, p99)` of the per-tile wall
    /// time in microseconds (0.0 for stages without tile spans).
    pub fn tile_us_percentiles(&self) -> (f64, f64, f64) {
        (
            self.tile_us.quantile_interpolated(0.5),
            self.tile_us.quantile_interpolated(0.95),
            self.tile_us.quantile_interpolated(0.99),
        )
    }
}

/// Summary of one flow span and its stages.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSummary {
    /// Flow name (the `name` field of the flow span).
    pub name: String,
    /// Wall time of the flow span in seconds.
    pub seconds: f64,
    /// One entry per stage span under the flow, in start order.
    pub stages: Vec<StageSummary>,
}

/// Span-tree index: indices of root events plus a parent-id → child-indices
/// map, both in start order (events are sorted by [`crate::drain`]).
struct TreeIndex {
    roots: Vec<usize>,
    children: HashMap<u64, Vec<usize>>,
}

fn index_tree(events: &[SpanEvent]) -> TreeIndex {
    let ids: std::collections::HashSet<u64> = events.iter().map(|e| e.id).collect();
    let mut roots = Vec::new();
    let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        match e.parent {
            Some(p) if ids.contains(&p) => children.entry(p).or_default().push(i),
            _ => roots.push(i),
        }
    }
    TreeIndex { roots, children }
}

/// A short display label: the span name plus its identifying field, e.g.
/// `flow(ours)`, `stage(refine color 1)`, `tile(3)`.
fn display_label(e: &SpanEvent) -> String {
    let tag = match e.name {
        names::FLOW => e.field("name").and_then(|v| v.as_str()).map(str::to_string),
        names::STAGE => e
            .field("label")
            .and_then(|v| v.as_str())
            .map(str::to_string),
        names::JOB => e
            .field("job")
            .and_then(|v| v.as_u64())
            .map(|v| v.to_string()),
        names::TILE => e
            .field("tile")
            .and_then(|v| v.as_u64())
            .map(|v| v.to_string()),
        names::SOLVE => e
            .field("solver")
            .and_then(|v| v.as_str())
            .map(str::to_string),
        names::ANOMALY => e.field("kind").and_then(|v| v.as_str()).map(str::to_string),
        _ => None,
    };
    match tag {
        Some(tag) => format!("{}({})", e.name, tag),
        None => e.name.to_string(),
    }
}

fn push_event_json(out: &mut String, e: &SpanEvent) {
    out.push_str("{\"type\":\"span\",\"id\":");
    let _ = write!(out, "{}", e.id);
    out.push_str(",\"parent\":");
    match e.parent {
        Some(p) => {
            let _ = write!(out, "{p}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"trace\":");
    let _ = write!(out, "{}", e.trace);
    out.push_str(",\"name\":");
    json::push_str_literal(out, e.name);
    out.push_str(",\"thread\":");
    let _ = write!(out, "{}", e.thread);
    out.push_str(",\"start_us\":");
    let _ = write!(out, "{}", e.start_ns / 1_000);
    out.push_str(",\"dur_us\":");
    let _ = write!(out, "{}", e.dur_ns / 1_000);
    out.push_str(",\"fields\":");
    json::push_fields_object(out, &e.fields);
    out.push('}');
}

impl Telemetry {
    /// Renders the span tree (with counters and histograms) as an indented,
    /// human-readable report.
    pub fn render_tree(&self) -> String {
        let tree = index_tree(&self.events);
        let mut out = String::new();
        out.push_str("spans:\n");
        for &root in &tree.roots {
            render_node(&mut out, &self.events, &tree, root, 1);
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name} = {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name} = {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name}: count={} p50={} p95={} p99={} max={} mean={:.1}",
                    h.count(),
                    h.quantile(0.5),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.max(),
                    h.mean()
                );
            }
        }
        out
    }

    /// Serialises the snapshot as JSON Lines: one `span` record per span
    /// (start order), then one `counter` record per counter and one
    /// `histogram` record per histogram.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            push_event_json(&mut out, e);
            out.push('\n');
        }
        for (name, v) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            json::push_str_literal(&mut out, name);
            let _ = write!(out, ",\"value\":{v}}}");
            out.push('\n');
        }
        for (name, v) in &self.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            json::push_str_literal(&mut out, name);
            out.push_str(",\"value\":");
            json::push_f64(&mut out, *v);
            out.push('}');
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            json::push_str_literal(&mut out, name);
            let _ = write!(
                out,
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.quantile(0.5),
                h.quantile(0.95),
                h.quantile(0.99)
            );
            out.push('\n');
        }
        out
    }

    /// Renders counters and histograms in the Prometheus text exposition
    /// format (version 0.0.4), the shape `GET /metrics` endpoints serve.
    ///
    /// Metric names are the workspace's dotted counter/histogram names with
    /// every non-alphanumeric character mapped to `_` and an `ilt_` prefix
    /// (so `fft.forward` becomes `ilt_fft_forward`). Counters get a
    /// `_total` suffix; histograms are exported as `_count`/`_sum` plus
    /// `quantile`-labelled summary samples. Spans are not exported — they
    /// belong to traces, not scrape targets.
    pub fn to_prometheus(&self) -> String {
        fn metric_name(raw: &str) -> String {
            let mut name = String::with_capacity(raw.len() + 4);
            name.push_str("ilt_");
            for c in raw.chars() {
                name.push(if c.is_ascii_alphanumeric() { c } else { '_' });
            }
            name
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let m = metric_name(name);
            let _ = writeln!(out, "# TYPE {m}_total counter");
            let _ = writeln!(out, "{m}_total {v}");
        }
        for (name, v) in &self.gauges {
            let m = metric_name(name);
            let _ = writeln!(out, "# TYPE {m} gauge");
            let _ = writeln!(out, "{m} {v}");
        }
        for (name, h) in &self.histograms {
            let m = metric_name(name);
            let _ = writeln!(out, "# TYPE {m} summary");
            for (q, v) in [
                (0.5, h.quantile_interpolated(0.5)),
                (0.95, h.quantile_interpolated(0.95)),
                (0.99, h.quantile_interpolated(0.99)),
            ] {
                let _ = writeln!(out, "{m}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{m}_sum {}", h.sum());
            let _ = writeln!(out, "{m}_count {}", h.count());
        }
        out
    }

    /// Serialises the spans in the Chrome `trace_event` JSON format
    /// (load the file in `chrome://tracing` or Perfetto).
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::push_str_literal(&mut out, &display_label(e));
            out.push_str(",\"cat\":");
            json::push_str_literal(&mut out, e.name);
            let _ = write!(
                out,
                ",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":",
                e.thread,
                e.start_ns / 1_000,
                e.dur_ns / 1_000
            );
            json::push_fields_object(&mut out, &e.fields);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Serialises the span tree as nested JSON (used inside `report.json`).
    pub fn span_tree_json(&self) -> String {
        span_forest_json(&self.events)
    }

    /// Derives per-flow summaries from the span tree: every `flow` span
    /// becomes a [`FlowSummary`], its child `stage` spans become
    /// [`StageSummary`] entries, and tile/assembly attribution comes from
    /// descendant `tile`/`assembly` spans (tiles may sit below `job` spans
    /// introduced by the executor).
    pub fn flow_summaries(&self) -> Vec<FlowSummary> {
        let tree = index_tree(&self.events);
        let mut flows = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            if e.name != names::FLOW {
                continue;
            }
            let name = e
                .field("name")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string();
            let mut stages = Vec::new();
            for &s in tree.children.get(&e.id).map_or(&[][..], |v| &v[..]) {
                let se = &self.events[s];
                if se.name != names::STAGE {
                    continue;
                }
                let label = se
                    .field("label")
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_string();
                let mut acc = StageAcc::default();
                sum_descendants(&self.events, &tree, s, &mut acc);
                stages.push(StageSummary {
                    label,
                    seconds: se.seconds(),
                    tile_count: acc.tile_count,
                    tile_seconds: acc.tile_seconds,
                    assembly_seconds: acc.assembly_seconds,
                    tile_us: acc.tile_us,
                });
            }
            flows.push(FlowSummary {
                name,
                seconds: self.events[i].seconds(),
                stages,
            });
        }
        flows
    }
}

fn render_node(out: &mut String, events: &[SpanEvent], tree: &TreeIndex, i: usize, depth: usize) {
    let e = &events[i];
    for _ in 0..depth {
        out.push_str("  ");
    }
    let _ = writeln!(
        out,
        "{} {:.3} ms (t{})",
        display_label(e),
        e.dur_ns as f64 / 1e6,
        e.thread
    );
    if let Some(kids) = tree.children.get(&e.id) {
        for &k in kids {
            render_node(out, events, tree, k, depth + 1);
        }
    }
}

/// Serialises any span slice as a nested JSON forest — the same shape as
/// [`Telemetry::span_tree_json`], usable over flight-recorder snapshots
/// (the `/debug/jobs/{id}/trace` endpoint) without building a
/// [`Telemetry`]. Events whose parent is absent from `events` become
/// roots; events should be sorted by `(start_ns, id)` for stable order.
pub fn span_forest_json(events: &[SpanEvent]) -> String {
    let tree = index_tree(events);
    let mut out = String::new();
    push_subtree_json(&mut out, events, &tree, &tree.roots);
    out
}

fn push_subtree_json(out: &mut String, events: &[SpanEvent], tree: &TreeIndex, nodes: &[usize]) {
    out.push('[');
    for (n, &i) in nodes.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        let e = &events[i];
        out.push_str("{\"name\":");
        json::push_str_literal(out, e.name);
        let _ = write!(out, ",\"id\":{},\"trace\":{}", e.id, e.trace);
        let _ = write!(out, ",\"thread\":{},\"seconds\":", e.thread);
        json::push_f64(out, e.seconds());
        out.push_str(",\"fields\":");
        json::push_fields_object(out, &e.fields);
        out.push_str(",\"children\":");
        match tree.children.get(&e.id) {
            Some(kids) => push_subtree_json(out, events, tree, kids),
            None => out.push_str("[]"),
        }
        out.push('}');
    }
    out.push(']');
}

/// Tile/assembly attribution accumulated over a stage's descendants.
#[derive(Default)]
struct StageAcc {
    tile_count: usize,
    tile_seconds: f64,
    assembly_seconds: f64,
    tile_us: Histogram,
}

/// Per-stage latency-budget attribution over a run: where the wall time
/// went, split along the axes the serving and scale-out work tune
/// (admission, kernel setup, which grid level, stitching).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyBudget {
    /// Time jobs spent queued before a worker picked them up, from the
    /// `serve.job.queue_us` histogram (0 outside server mode).
    pub queue_wait_s: f64,
    /// Time inside `build` spans (litho kernel-bank and inspection-system
    /// construction).
    pub kernel_build_s: f64,
    /// Tile-solve seconds under stages labelled `coarse*`.
    pub coarse_tiles_s: f64,
    /// Tile-solve seconds under stages labelled `fine*`.
    pub fine_tiles_s: f64,
    /// Tile-solve seconds under stages labelled `refine*`.
    pub refine_tiles_s: f64,
    /// Tile-solve seconds under stages with any other label.
    pub other_tiles_s: f64,
    /// Sequential assembly seconds across all stages.
    pub assembly_s: f64,
    /// Flow wall seconds across all flow spans.
    pub flow_total_s: f64,
}

impl LatencyBudget {
    /// Flow wall time not attributed to tiles or assembly (per-stage
    /// orchestration, partitioning, restriction/prolongation, ...).
    pub fn unattributed_s(&self) -> f64 {
        (self.flow_total_s
            - self.coarse_tiles_s
            - self.fine_tiles_s
            - self.refine_tiles_s
            - self.other_tiles_s
            - self.assembly_s)
            .max(0.0)
    }

    /// JSON object rendering (the `latency_budget` section of
    /// `ilt-report/v2`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, v)) in [
            ("queue_wait_s", self.queue_wait_s),
            ("kernel_build_s", self.kernel_build_s),
            ("coarse_tiles_s", self.coarse_tiles_s),
            ("fine_tiles_s", self.fine_tiles_s),
            ("refine_tiles_s", self.refine_tiles_s),
            ("other_tiles_s", self.other_tiles_s),
            ("assembly_s", self.assembly_s),
            ("unattributed_s", self.unattributed_s()),
            ("flow_total_s", self.flow_total_s),
        ]
        .iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{key}\":");
            json::push_f64(&mut out, *v);
        }
        out.push('}');
        out
    }
}

impl Telemetry {
    /// Derives the [`LatencyBudget`] from the snapshot's spans and the
    /// `serve.job.queue_us` histogram.
    pub fn latency_budget(&self) -> LatencyBudget {
        let mut budget = LatencyBudget::default();
        if let Some(h) = self.histograms.get("serve.job.queue_us") {
            budget.queue_wait_s = h.sum() as f64 / 1e6;
        }
        for e in &self.events {
            if e.name == names::BUILD {
                budget.kernel_build_s += e.seconds();
            }
        }
        for flow in self.flow_summaries() {
            budget.flow_total_s += flow.seconds;
            for stage in &flow.stages {
                let bucket = if stage.label.starts_with("coarse") {
                    &mut budget.coarse_tiles_s
                } else if stage.label.starts_with("fine") {
                    &mut budget.fine_tiles_s
                } else if stage.label.starts_with("refine") {
                    &mut budget.refine_tiles_s
                } else {
                    &mut budget.other_tiles_s
                };
                *bucket += stage.tile_seconds;
                budget.assembly_s += stage.assembly_seconds;
            }
        }
        budget
    }
}

fn sum_descendants(events: &[SpanEvent], tree: &TreeIndex, i: usize, acc: &mut StageAcc) {
    if let Some(kids) = tree.children.get(&events[i].id) {
        for &k in kids {
            match events[k].name {
                names::TILE => {
                    acc.tile_count += 1;
                    acc.tile_seconds += events[k].seconds();
                    acc.tile_us.record(events[k].dur_ns / 1_000);
                }
                names::ASSEMBLY => acc.assembly_seconds += events[k].seconds(),
                _ => {}
            }
            sum_descendants(events, tree, k, acc);
        }
    }
}

//! Live (still-open) span stacks, published for out-of-thread sampling.
//!
//! The flight recorder only sees *closed* spans, which is useless for a
//! sampling CPU profiler: a sample must attribute the instant it fires to
//! the spans that are open right now. This module gives every recording
//! thread a shared copy of its open-span stack — pushed in
//! [`crate::span`], popped when the guard records — behind one short,
//! normally uncontended mutex hold per push/pop. A sampler thread
//! (`ilt-prof`) walks the registry of all live stacks and clones each one
//! under the same short hold.
//!
//! Frames carry the span name plus an optional *detail* string set from
//! the first identifying string field attached to the span (`label`,
//! `name`, `what`, `method`), so collapsed stacks read
//! `flow:multigrid_schwarz;stage:coarse_s=4;tile;solve` rather than an
//! undifferentiated `flow;stage;tile;solve`. Numeric fields (tile and job
//! indices) are deliberately ignored so frames from different tiles
//! collapse into one flamegraph node.
//!
//! Stacks are registered when a thread's telemetry buffer is first used
//! and unregistered (lazily, via `Weak` upgrade failure) when the thread
//! exits. Adopted parents ([`crate::parent_scope`]) are *not* mirrored
//! here: each thread's live stack stands alone, so worker threads root at
//! their `job` span — which is what a per-thread CPU profile should show.

use std::sync::{Arc, Mutex, OnceLock, Weak};

/// One open span on a live stack.
#[derive(Debug, Clone)]
pub struct LiveFrame {
    /// Span id (matches the eventual [`crate::SpanEvent::id`]).
    pub id: u64,
    /// Span name (one of [`crate::names`] for workspace spans).
    pub name: &'static str,
    /// First identifying string field (`label`/`name`/`what`/`method`),
    /// if one was attached.
    pub detail: Option<String>,
}

/// A thread's shared open-span stack. Owned by the thread's telemetry
/// buffer; the registry holds a `Weak`.
#[derive(Debug)]
pub(crate) struct LiveStack {
    thread: u64,
    frames: Mutex<Vec<LiveFrame>>,
}

static REGISTRY: OnceLock<Mutex<Vec<Weak<LiveStack>>>> = OnceLock::new();

fn registry() -> &'static Mutex<Vec<Weak<LiveStack>>> {
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

impl LiveStack {
    /// Creates and registers a stack for the thread with ordinal
    /// `thread`. Called once per thread from the telemetry buffer's
    /// constructor.
    pub(crate) fn register(thread: u64) -> Arc<LiveStack> {
        let stack = Arc::new(LiveStack {
            thread,
            frames: Mutex::new(Vec::new()),
        });
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        // Prune entries from exited threads while we hold the lock anyway.
        reg.retain(|w| w.strong_count() > 0);
        reg.push(Arc::downgrade(&stack));
        stack
    }

    /// Pushes an open span.
    pub(crate) fn push(&self, id: u64, name: &'static str) {
        self.frames
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(LiveFrame {
                id,
                name,
                detail: None,
            });
    }

    /// Pops back to (and including) the frame with `id`. Mirrors the
    /// span-stack truncation in [`crate::SpanGuard`]: a guard dropped out
    /// of order also closes everything opened above it.
    pub(crate) fn pop(&self, id: u64) {
        let mut frames = self.frames.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = frames.iter().rposition(|f| f.id == id) {
            frames.truncate(pos);
        }
    }

    /// Sets the detail string of the open frame with `id` (innermost
    /// match), if it has none yet — first identifying field wins.
    pub(crate) fn set_detail(&self, id: u64, detail: &str) {
        let mut frames = self.frames.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(frame) = frames.iter_mut().rev().find(|f| f.id == id) {
            if frame.detail.is_none() {
                frame.detail = Some(detail.to_string());
            }
        }
    }
}

/// Snapshot of every live thread's open-span stack, as
/// `(thread ordinal, frames outermost-first)`. Threads with no open spans
/// are omitted. This is the sampling profiler's read side; each stack is
/// cloned under one short per-thread mutex hold.
pub fn sample_stacks() -> Vec<(u64, Vec<LiveFrame>)> {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Vec::with_capacity(reg.len());
    for weak in reg.iter() {
        if let Some(stack) = weak.upgrade() {
            let frames = stack
                .frames
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone();
            if !frames.is_empty() {
                out.push((stack.thread, frames));
            }
        }
    }
    out.sort_by_key(|(thread, _)| *thread);
    out
}

/// Number of registered live stacks (threads that have recorded telemetry
/// and are still running). For tests.
pub fn live_thread_count() -> usize {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.iter().filter(|w| w.strong_count() > 0).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_spans_are_visible_and_popped() {
        let outer_id;
        {
            let mut outer = crate::span(crate::names::FLOW);
            outer.add_field("name", "live_test_flow");
            outer_id = outer.span_ref().unwrap().0;
            let _inner = crate::span(crate::names::STAGE);
            let me = crate::collect::with_local(|l| l.thread).unwrap();
            let stacks = sample_stacks();
            let mine = stacks
                .iter()
                .find(|(t, _)| *t == me)
                .expect("own stack visible");
            assert_eq!(mine.1.len(), 2);
            assert_eq!(mine.1[0].name, crate::names::FLOW);
            assert_eq!(mine.1[0].detail.as_deref(), Some("live_test_flow"));
            assert_eq!(mine.1[1].name, crate::names::STAGE);
            assert_eq!(mine.1[1].detail, None);
        }
        let me = crate::collect::with_local(|l| l.thread).unwrap();
        let stacks = sample_stacks();
        let mine = stacks.iter().find(|(t, _)| *t == me);
        assert!(
            mine.is_none() || mine.unwrap().1.iter().all(|f| f.id != outer_id),
            "closed spans must leave the live stack"
        );
    }

    #[test]
    fn worker_stacks_stand_alone() {
        let span = crate::span(crate::names::JOB);
        let parent = span.span_ref();
        std::thread::spawn(move || {
            let _adopted = crate::parent_scope(parent);
            let _tile = crate::span(crate::names::TILE);
            let me = crate::collect::with_local(|l| l.thread).unwrap();
            let stacks = sample_stacks();
            let mine = stacks
                .iter()
                .find(|(t, _)| *t == me)
                .expect("worker stack visible");
            // The adopted parent is span-stack state, not a live frame:
            // the worker's profile roots at its own tile span.
            assert_eq!(mine.1.len(), 1);
            assert_eq!(mine.1[0].name, crate::names::TILE);
        })
        .join()
        .unwrap();
    }
}

//! Minimal JSON string building, shared by the exporters and the bench
//! harness's `report.json` writer. No serde — the workspace is
//! dependency-free by design.

use crate::span::FieldValue;

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number (non-finite values become `null`).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Appends a [`FieldValue`] as a JSON value.
pub fn push_field_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(x) => out.push_str(&x.to_string()),
        FieldValue::I64(x) => out.push_str(&x.to_string()),
        FieldValue::F64(x) => push_f64(out, *x),
        FieldValue::Str(s) => push_str_literal(out, s),
    }
}

/// Appends a `{"k": v, ...}` object from span fields.
pub fn push_fields_object(out: &mut String, fields: &[(&'static str, FieldValue)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_literal(out, k);
        out.push(':');
        push_field_value(out, v);
    }
    out.push('}');
}

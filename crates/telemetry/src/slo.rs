//! Declarative service-level objectives with multi-window burn rates.
//!
//! An [`Objective`] classifies each finished job as *good* or *bad* (did
//! it beat the latency threshold? did it fail? was it degraded?) against a
//! target good-fraction. The engine keeps per-second good/bad buckets in a
//! fixed ring and reports, for each configured window, the **burn rate**:
//!
//! ```text
//! burn = (bad / (good + bad)) / (1 - target)
//! ```
//!
//! `burn == 1` means the error budget is being consumed exactly as fast as
//! the objective allows; `burn > 1` on a short *and* a long window is the
//! classic page condition. `ilt-serve` feeds the engine from job
//! completions and exports the series on `/metrics` as
//! `ilt_slo_burn_rate{objective=...,window=...}`.
//!
//! Everything is wall-clock-free below the public API: observations and
//! reports can be pinned to an explicit second for deterministic tests.

use std::sync::Mutex;
use std::time::Instant;

/// What an objective measures about each job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloKind {
    /// Good iff the job finished (successfully or not) within the
    /// threshold, in microseconds end-to-end (queue wait included).
    JobLatency {
        /// Latency threshold in microseconds.
        threshold_us: u64,
    },
    /// Good iff the job did not fail.
    JobErrors,
    /// Good iff no tile of the job degraded to its coarse fallback.
    JobDegraded,
}

/// One declarative objective: a kind plus the target good-fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Stable name used in metric labels (`job_latency`, ...).
    pub name: String,
    /// What is measured.
    pub kind: SloKind,
    /// Target good fraction in `(0, 1)`, e.g. `0.99` for "99% of jobs".
    pub target: f64,
}

/// A set of objectives plus the burn-rate windows (seconds) they are
/// evaluated over.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// The objectives, in export order.
    pub objectives: Vec<Objective>,
    /// Burn-rate windows in seconds, shortest first.
    pub windows: Vec<u64>,
}

impl SloConfig {
    /// The default serving objectives: p99-style job latency under 30 s,
    /// 99.9% non-failed, 99% non-degraded, over 1 m / 5 m / 30 m windows.
    pub fn serve_default() -> Self {
        SloConfig {
            objectives: vec![
                Objective {
                    name: "job_latency".to_string(),
                    kind: SloKind::JobLatency {
                        threshold_us: 30_000_000,
                    },
                    target: 0.99,
                },
                Objective {
                    name: "job_errors".to_string(),
                    kind: SloKind::JobErrors,
                    target: 0.999,
                },
                Objective {
                    name: "job_degraded".to_string(),
                    kind: SloKind::JobDegraded,
                    target: 0.99,
                },
            ],
            windows: vec![60, 300, 1800],
        }
    }

    /// Builds the config from `ILT_SLO` / `ILT_SLO_WINDOWS`, falling back
    /// to [`SloConfig::serve_default`] for anything unset or malformed.
    ///
    /// Grammar: `ILT_SLO` is a comma-separated list of
    /// `job_latency:<threshold_ms>:<target>`, `job_errors:<target>`, and
    /// `job_degraded:<target>` entries; `ILT_SLO_WINDOWS` is a
    /// comma-separated list of window lengths in seconds.
    pub fn from_env() -> Self {
        let mut config = Self::serve_default();
        if let Ok(spec) = std::env::var("ILT_SLO") {
            if let Some(objectives) = parse_objectives(&spec) {
                config.objectives = objectives;
            }
        }
        if let Ok(spec) = std::env::var("ILT_SLO_WINDOWS") {
            let windows: Option<Vec<u64>> = spec
                .split(',')
                .map(|w| w.trim().parse::<u64>().ok().filter(|&w| w > 0))
                .collect();
            if let Some(mut windows) = windows.filter(|w| !w.is_empty()) {
                windows.sort_unstable();
                config.windows = windows;
            }
        }
        config
    }
}

fn parse_objectives(spec: &str) -> Option<Vec<Objective>> {
    let mut out = Vec::new();
    for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
        let parts: Vec<&str> = entry.trim().split(':').collect();
        let target_of = |s: &str| s.parse::<f64>().ok().filter(|t| (0.0..1.0).contains(t));
        let objective = match parts.as_slice() {
            ["job_latency", threshold_ms, target] => Objective {
                name: "job_latency".to_string(),
                kind: SloKind::JobLatency {
                    threshold_us: threshold_ms.parse::<u64>().ok()?.checked_mul(1000)?,
                },
                target: target_of(target)?,
            },
            ["job_errors", target] => Objective {
                name: "job_errors".to_string(),
                kind: SloKind::JobErrors,
                target: target_of(target)?,
            },
            ["job_degraded", target] => Objective {
                name: "job_degraded".to_string(),
                kind: SloKind::JobDegraded,
                target: target_of(target)?,
            },
            _ => return None,
        };
        out.push(objective);
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// One second's worth of classifications for one objective.
#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    sec: u64,
    good: u64,
    bad: u64,
}

#[derive(Debug)]
struct ObjState {
    objective: Objective,
    /// Ring indexed by `sec % ring.len()`; stale entries are detected by
    /// their `sec` stamp, so idle gaps need no advancing writes.
    ring: Vec<Bucket>,
    total_good: u64,
    total_bad: u64,
}

/// Burn-rate report for one objective over one window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowBurn {
    /// Window length in seconds.
    pub window_s: u64,
    /// Good events inside the window.
    pub good: u64,
    /// Bad events inside the window.
    pub bad: u64,
    /// `(bad fraction) / (1 - target)`; `0` when the window is empty.
    pub burn_rate: f64,
}

/// Burn-rate report for one objective across every configured window.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveBurn {
    /// The objective this report describes.
    pub objective: Objective,
    /// Good events since engine start.
    pub total_good: u64,
    /// Bad events since engine start.
    pub total_bad: u64,
    /// Per-window burn rates, shortest window first.
    pub windows: Vec<WindowBurn>,
}

/// The live burn-rate engine. One per process ([`ilt-serve`] keeps it in a
/// `OnceLock`); observation and report are one short mutex hold each.
#[derive(Debug)]
pub struct SloEngine {
    start: Instant,
    windows: Vec<u64>,
    state: Mutex<Vec<ObjState>>,
}

impl SloEngine {
    /// Builds an engine for `config`. Ring memory per objective is
    /// `max(windows)` buckets (24 bytes each).
    pub fn new(config: SloConfig) -> Self {
        let span = config.windows.iter().copied().max().unwrap_or(60).max(1) as usize;
        let state = config
            .objectives
            .into_iter()
            .map(|objective| ObjState {
                objective,
                ring: vec![Bucket::default(); span],
                total_good: 0,
                total_bad: 0,
            })
            .collect();
        SloEngine {
            start: Instant::now(),
            windows: config.windows,
            state: Mutex::new(state),
        }
    }

    fn now_sec(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    /// Classifies one finished job against every objective, at the current
    /// wall-clock second.
    pub fn observe_job(&self, latency_us: u64, failed: bool, degraded: bool) {
        self.observe_job_at(self.now_sec(), latency_us, failed, degraded);
    }

    /// Like [`SloEngine::observe_job`], pinned to an explicit second since
    /// engine start (deterministic tests).
    pub fn observe_job_at(&self, sec: u64, latency_us: u64, failed: bool, degraded: bool) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        for obj in state.iter_mut() {
            let good = match obj.objective.kind {
                SloKind::JobLatency { threshold_us } => latency_us <= threshold_us,
                SloKind::JobErrors => !failed,
                SloKind::JobDegraded => !degraded,
            };
            let len = obj.ring.len() as u64;
            let bucket = &mut obj.ring[(sec % len) as usize];
            if bucket.sec != sec {
                *bucket = Bucket {
                    sec,
                    good: 0,
                    bad: 0,
                };
            }
            if good {
                bucket.good += 1;
                obj.total_good += 1;
            } else {
                bucket.bad += 1;
                obj.total_bad += 1;
            }
        }
    }

    /// Burn rates for every objective at the current second.
    pub fn burn_rates(&self) -> Vec<ObjectiveBurn> {
        self.burn_rates_at(self.now_sec())
    }

    /// Like [`SloEngine::burn_rates`], pinned to an explicit second.
    pub fn burn_rates_at(&self, now: u64) -> Vec<ObjectiveBurn> {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state
            .iter()
            .map(|obj| {
                let windows = self
                    .windows
                    .iter()
                    .map(|&w| {
                        let oldest = now.saturating_sub(w.saturating_sub(1));
                        let (mut good, mut bad) = (0u64, 0u64);
                        for bucket in &obj.ring {
                            if bucket.sec >= oldest && bucket.sec <= now {
                                good += bucket.good;
                                bad += bucket.bad;
                            }
                        }
                        let burn_rate = if good + bad == 0 {
                            0.0
                        } else {
                            let bad_fraction = bad as f64 / (good + bad) as f64;
                            bad_fraction / (1.0 - obj.objective.target).max(1e-9)
                        };
                        WindowBurn {
                            window_s: w,
                            good,
                            bad,
                            burn_rate,
                        }
                    })
                    .collect();
                ObjectiveBurn {
                    objective: obj.objective.clone(),
                    total_good: obj.total_good,
                    total_bad: obj.total_bad,
                    windows,
                }
            })
            .collect()
    }

    /// Prometheus text exposition of the burn-rate series and event
    /// totals; appended to `/metrics` by `ilt-serve`.
    pub fn to_prometheus(&self) -> String {
        let reports = self.burn_rates();
        let mut out = String::new();
        out.push_str("# TYPE ilt_slo_burn_rate gauge\n");
        for report in &reports {
            for window in &report.windows {
                out.push_str(&format!(
                    "ilt_slo_burn_rate{{objective=\"{}\",window=\"{}s\"}} {}\n",
                    report.objective.name, window.window_s, window.burn_rate
                ));
            }
        }
        out.push_str("# TYPE ilt_slo_events_total counter\n");
        for report in &reports {
            out.push_str(&format!(
                "ilt_slo_events_total{{objective=\"{}\",outcome=\"good\"}} {}\n",
                report.objective.name, report.total_good
            ));
            out.push_str(&format!(
                "ilt_slo_events_total{{objective=\"{}\",outcome=\"bad\"}} {}\n",
                report.objective.name, report.total_bad
            ));
        }
        out
    }

    /// JSON rendering for `/debug/slo`.
    pub fn to_json(&self) -> String {
        let reports = self.burn_rates();
        let mut out = String::from("{\"objectives\":[");
        for (i, report) in reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            out.push_str("\"name\":");
            crate::json::push_str_literal(&mut out, &report.objective.name);
            let (kind, threshold_us) = match report.objective.kind {
                SloKind::JobLatency { threshold_us } => ("latency", Some(threshold_us)),
                SloKind::JobErrors => ("errors", None),
                SloKind::JobDegraded => ("degraded", None),
            };
            out.push_str(&format!(",\"kind\":\"{kind}\""));
            if let Some(threshold_us) = threshold_us {
                out.push_str(&format!(",\"threshold_us\":{threshold_us}"));
            }
            out.push_str(",\"target\":");
            crate::json::push_f64(&mut out, report.objective.target);
            out.push_str(&format!(
                ",\"total_good\":{},\"total_bad\":{},\"windows\":[",
                report.total_good, report.total_bad
            ));
            for (j, window) in report.windows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"seconds\":{},\"good\":{},\"bad\":{},\"burn_rate\":",
                    window.window_s, window.good, window.bad
                ));
                crate::json::push_f64(&mut out, window.burn_rate);
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latency_only(threshold_us: u64, target: f64, windows: Vec<u64>) -> SloEngine {
        SloEngine::new(SloConfig {
            objectives: vec![Objective {
                name: "job_latency".to_string(),
                kind: SloKind::JobLatency { threshold_us },
                target,
            }],
            windows,
        })
    }

    #[test]
    fn burn_rate_is_bad_fraction_over_budget() {
        let engine = latency_only(1000, 0.99, vec![60]);
        // 9 good, 1 bad at second 10 → bad fraction 0.1, budget 0.01.
        for _ in 0..9 {
            engine.observe_job_at(10, 500, false, false);
        }
        engine.observe_job_at(10, 5000, false, false);
        let reports = engine.burn_rates_at(10);
        let w = &reports[0].windows[0];
        assert_eq!((w.good, w.bad), (9, 1));
        assert!((w.burn_rate - 10.0).abs() < 1e-9, "burn {}", w.burn_rate);
    }

    #[test]
    fn windows_see_only_their_span() {
        let engine = latency_only(1000, 0.9, vec![10, 100]);
        engine.observe_job_at(0, 5000, false, false); // bad, old
        engine.observe_job_at(50, 500, false, false); // good, recent
        let reports = engine.burn_rates_at(55);
        let short = &reports[0].windows[0];
        let long = &reports[0].windows[1];
        assert_eq!((short.good, short.bad), (1, 0));
        assert_eq!(short.burn_rate, 0.0);
        assert_eq!((long.good, long.bad), (1, 1));
        assert!((long.burn_rate - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ring_reuses_buckets_without_leaking_old_seconds() {
        // Ring length = 10 (max window); second 15 lands on second 5's
        // bucket and must replace it, not add to it.
        let engine = latency_only(1000, 0.5, vec![10]);
        engine.observe_job_at(5, 5000, false, false);
        engine.observe_job_at(15, 500, false, false);
        let reports = engine.burn_rates_at(15);
        let w = &reports[0].windows[0];
        assert_eq!((w.good, w.bad), (1, 0));
        assert_eq!(reports[0].total_bad, 1, "totals still count everything");
    }

    #[test]
    fn kinds_classify_errors_and_degradation() {
        let engine = SloEngine::new(SloConfig {
            objectives: vec![
                Objective {
                    name: "job_errors".to_string(),
                    kind: SloKind::JobErrors,
                    target: 0.5,
                },
                Objective {
                    name: "job_degraded".to_string(),
                    kind: SloKind::JobDegraded,
                    target: 0.5,
                },
            ],
            windows: vec![60],
        });
        engine.observe_job_at(1, 10, true, false);
        engine.observe_job_at(1, 10, false, true);
        let reports = engine.burn_rates_at(1);
        assert_eq!(reports[0].total_bad, 1, "one failed job");
        assert_eq!(reports[1].total_bad, 1, "one degraded job");
        assert_eq!(reports[0].total_good, 1);
        assert_eq!(reports[1].total_good, 1);
    }

    #[test]
    fn empty_window_has_zero_burn() {
        let engine = latency_only(1000, 0.99, vec![60]);
        let reports = engine.burn_rates_at(0);
        assert_eq!(reports[0].windows[0].burn_rate, 0.0);
    }

    #[test]
    fn env_grammar_parses() {
        let objectives =
            parse_objectives("job_latency:2000:0.95, job_errors:0.999,job_degraded:0.9").unwrap();
        assert_eq!(objectives.len(), 3);
        assert_eq!(
            objectives[0].kind,
            SloKind::JobLatency {
                threshold_us: 2_000_000
            }
        );
        assert_eq!(objectives[0].target, 0.95);
        assert!(parse_objectives("nonsense").is_none());
        assert!(parse_objectives("job_latency:abc:0.9").is_none());
        assert!(parse_objectives("job_errors:1.5").is_none());
    }

    #[test]
    fn exports_are_well_formed() {
        let engine = latency_only(1000, 0.99, vec![60, 300]);
        engine.observe_job_at(0, 2000, false, false);
        let prom = engine.to_prometheus();
        assert!(prom.contains("ilt_slo_burn_rate{objective=\"job_latency\",window=\"60s\"}"));
        assert!(prom.contains("ilt_slo_events_total{objective=\"job_latency\",outcome=\"bad\"} 1"));
        let json = engine.to_json();
        assert!(json.starts_with("{\"objectives\":["));
        assert!(json.contains("\"threshold_us\":1000"));
    }
}

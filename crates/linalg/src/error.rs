//! Error type for dense linear algebra operations.

use std::error::Error;
use std::fmt;

/// Errors returned by matrix construction and the eigensolver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinalgError {
    /// A buffer did not match the requested matrix shape.
    ShapeMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Number of elements supplied.
        actual: usize,
    },
    /// Two operands have incompatible shapes.
    DimensionMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// The eigensolver requires a Hermitian matrix but the input is not
    /// Hermitian within tolerance.
    NotHermitian {
        /// Measured deviation `max |a_ij - conj(a_ji)|`.
        defect: f64,
    },
    /// The Jacobi iteration did not converge within the sweep limit.
    NoConvergence {
        /// Number of sweeps performed.
        sweeps: usize,
        /// Remaining off-diagonal squared magnitude.
        off_diagonal: f64,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer has {actual} elements but the shape needs {expected}"
                )
            }
            LinalgError::DimensionMismatch { left, right } => write!(
                f,
                "incompatible shapes {}x{} and {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotHermitian { defect } => {
                write!(f, "matrix is not Hermitian (defect {defect:.3e})")
            }
            LinalgError::NoConvergence {
                sweeps,
                off_diagonal,
            } => write!(
                f,
                "jacobi iteration did not converge after {sweeps} sweeps \
                 (off-diagonal {off_diagonal:.3e})"
            ),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(LinalgError::ShapeMismatch {
            expected: 4,
            actual: 3
        }
        .to_string()
        .contains('4'));
        assert!(LinalgError::DimensionMismatch {
            left: (2, 3),
            right: (4, 5)
        }
        .to_string()
        .contains("2x3"));
        assert!(LinalgError::NotHermitian { defect: 0.5 }
            .to_string()
            .contains("Hermitian"));
        assert!(LinalgError::NoConvergence {
            sweeps: 30,
            off_diagonal: 1.0
        }
        .to_string()
        .contains("30"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn check<E: std::error::Error + Send + Sync>() {}
        check::<LinalgError>();
    }
}

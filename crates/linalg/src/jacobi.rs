//! Cyclic Jacobi eigensolver for Hermitian matrices.
//!
//! The Hopkins transmission cross-coefficient (TCC) operator is Hermitian
//! positive semi-definite; the sum-of-coherent-systems (SOCS) decomposition
//! used by Eq. (1) of the paper is exactly its spectral decomposition. The
//! TCC matrices in this workspace are small (a few hundred rows), so the
//! unconditionally stable `O(n^3)`-per-sweep Jacobi method is a good fit.

use ilt_fft::Complex;

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Result of a Hermitian eigendecomposition: `A = V diag(values) V^H`.
#[derive(Debug, Clone)]
pub struct Eigendecomposition {
    /// Real eigenvalues, sorted in descending order.
    pub values: Vec<f64>,
    /// Unitary matrix whose `k`-th **column** is the eigenvector for
    /// `values[k]`.
    pub vectors: Matrix,
}

impl Eigendecomposition {
    /// The `k`-th eigenvector as an owned column.
    ///
    /// # Panics
    ///
    /// Panics if `k >= values.len()`.
    pub fn vector(&self, k: usize) -> Vec<Complex> {
        assert!(k < self.values.len(), "eigenvector index out of range");
        (0..self.vectors.rows())
            .map(|r| self.vectors.get(r, k))
            .collect()
    }

    /// Reconstructs `V diag(values) V^H`; used to validate the decomposition.
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        Matrix::from_fn(n, n, |r, c| {
            let mut acc = Complex::ZERO;
            for k in 0..n {
                acc += self.vectors.get(r, k) * self.vectors.get(c, k).conj() * self.values[k];
            }
            acc
        })
    }
}

/// Options controlling the Jacobi iteration.
#[derive(Debug, Clone, Copy)]
pub struct JacobiOptions {
    /// Maximum number of full sweeps over all off-diagonal pairs.
    pub max_sweeps: usize,
    /// Convergence threshold on `sqrt(off_diagonal_sqr) / frobenius_norm`.
    pub tolerance: f64,
    /// Allowed Hermitian defect of the input.
    pub hermitian_tolerance: f64,
}

impl Default for JacobiOptions {
    fn default() -> Self {
        JacobiOptions {
            max_sweeps: 64,
            tolerance: 1e-12,
            hermitian_tolerance: 1e-9,
        }
    }
}

/// Computes the eigendecomposition of a Hermitian matrix with default
/// options.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if the matrix is not square.
/// * [`LinalgError::NotHermitian`] if the matrix is not Hermitian.
/// * [`LinalgError::NoConvergence`] if the sweep limit is exhausted.
///
/// # Examples
///
/// ```
/// use ilt_fft::Complex;
/// use ilt_linalg::{eigh, Matrix};
///
/// # fn main() -> Result<(), ilt_linalg::LinalgError> {
/// let a = Matrix::from_vec(2, 2, vec![
///     Complex::from_re(2.0), Complex::from_re(1.0),
///     Complex::from_re(1.0), Complex::from_re(2.0),
/// ])?;
/// let eig = eigh(&a)?;
/// assert!((eig.values[0] - 3.0).abs() < 1e-10);
/// assert!((eig.values[1] - 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn eigh(matrix: &Matrix) -> Result<Eigendecomposition, LinalgError> {
    eigh_with(matrix, JacobiOptions::default())
}

/// Computes the eigendecomposition of a Hermitian matrix with explicit
/// options.
///
/// # Errors
///
/// Same as [`eigh`].
pub fn eigh_with(
    matrix: &Matrix,
    options: JacobiOptions,
) -> Result<Eigendecomposition, LinalgError> {
    if !matrix.is_square() {
        return Err(LinalgError::DimensionMismatch {
            left: (matrix.rows(), matrix.cols()),
            right: (matrix.cols(), matrix.rows()),
        });
    }
    let defect = matrix.hermitian_defect();
    if defect > options.hermitian_tolerance {
        return Err(LinalgError::NotHermitian { defect });
    }

    let n = matrix.rows();
    let mut a = matrix.clone();
    let mut v = Matrix::identity(n);

    if n == 1 {
        return Ok(Eigendecomposition {
            values: vec![a.get(0, 0).re],
            vectors: v,
        });
    }

    let norm = a.frobenius_norm().max(f64::MIN_POSITIVE);
    let mut converged = false;
    let mut sweeps = 0;
    while sweeps < options.max_sweeps {
        sweeps += 1;
        for p in 0..n - 1 {
            for q in p + 1..n {
                rotate(&mut a, &mut v, p, q);
            }
        }
        if a.off_diagonal_sqr().sqrt() <= options.tolerance * norm {
            converged = true;
            break;
        }
    }
    if !converged && a.off_diagonal_sqr().sqrt() > options.tolerance * norm {
        return Err(LinalgError::NoConvergence {
            sweeps,
            off_diagonal: a.off_diagonal_sqr(),
        });
    }

    // Extract and sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| a.get(i, i).re).collect();
    order.sort_by(|&x, &y| {
        diag[y]
            .partial_cmp(&diag[x])
            .expect("eigenvalues are finite")
    });
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = Matrix::from_fn(n, n, |r, c| v.get(r, order[c]));

    Ok(Eigendecomposition { values, vectors })
}

/// Applies one complex Jacobi rotation annihilating `a[p][q]`.
///
/// The rotation is the unitary matrix `R` equal to the identity except for
/// `R[p][p] = c`, `R[p][q] = s * phase`, `R[q][p] = -s * conj(phase)`,
/// `R[q][q] = c`, where `phase = a_pq / |a_pq|` and `(c, s)` are the
/// classical Jacobi cosine/sine. `a` is replaced by `R^H a R` and the
/// accumulated eigenvector matrix `v` by `v R`.
fn rotate(a: &mut Matrix, v: &mut Matrix, p: usize, q: usize) {
    let apq = a.get(p, q);
    let mag = apq.abs();
    if mag == 0.0 {
        return;
    }
    let phase = apq.scale(1.0 / mag);
    let app = a.get(p, p).re;
    let aqq = a.get(q, q).re;

    let tau = (aqq - app) / (2.0 * mag);
    let t = if tau >= 0.0 {
        1.0 / (tau + (1.0 + tau * tau).sqrt())
    } else {
        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;
    let s_c = phase.scale(s); // complex sine

    let n = a.rows();
    // Column update: B = A R  (touches columns p and q only).
    for i in 0..n {
        let aip = a.get(i, p);
        let aiq = a.get(i, q);
        a.set(i, p, aip.scale(c) - aiq * s_c.conj());
        a.set(i, q, aip * s_c + aiq.scale(c));
    }
    // Row update: A' = R^H B (touches rows p and q only).
    for j in 0..n {
        let apj = a.get(p, j);
        let aqj = a.get(q, j);
        a.set(p, j, apj.scale(c) - s_c * aqj);
        a.set(q, j, apj * s_c.conj() + aqj.scale(c));
    }
    // Clean up rounding on the annihilated pair and keep the diagonal real.
    a.set(p, q, Complex::ZERO);
    a.set(q, p, Complex::ZERO);
    a.set(p, p, Complex::from_re(a.get(p, p).re));
    a.set(q, q, Complex::from_re(a.get(q, q).re));

    // Accumulate eigenvectors: V = V R.
    for i in 0..v.rows() {
        let vip = v.get(i, p);
        let viq = v.get(i, q);
        v.set(i, p, vip.scale(c) - viq * s_c.conj());
        v.set(i, q, vip * s_c + viq.scale(c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hermitian_from_seed(n: usize, seed: u64) -> Matrix {
        // Deterministic pseudo-random Hermitian matrix.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut m = Matrix::zeros(n, n);
        for r in 0..n {
            for c in r..n {
                if r == c {
                    m.set(r, c, Complex::from_re(next()));
                } else {
                    let z = Complex::new(next(), next());
                    m.set(r, c, z);
                    m.set(c, r, z.conj());
                }
            }
        }
        m
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let mut a = Matrix::zeros(3, 3);
        a.set(0, 0, Complex::from_re(1.0));
        a.set(1, 1, Complex::from_re(-2.0));
        a.set(2, 2, Complex::from_re(5.0));
        let eig = eigh(&a).unwrap();
        assert_eq!(eig.values, vec![5.0, 1.0, -2.0]);
    }

    #[test]
    fn two_by_two_known_eigenvalues() {
        // [[0, -i], [i, 0]] has eigenvalues +-1.
        let a = Matrix::from_vec(
            2,
            2,
            vec![Complex::ZERO, -Complex::I, Complex::I, Complex::ZERO],
        )
        .unwrap();
        let eig = eigh(&a).unwrap();
        assert!((eig.values[0] - 1.0).abs() < 1e-12);
        assert!((eig.values[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_vec(1, 1, vec![Complex::from_re(7.0)]).unwrap();
        let eig = eigh(&a).unwrap();
        assert_eq!(eig.values, vec![7.0]);
        assert_eq!(eig.vectors.get(0, 0), Complex::ONE);
    }

    #[test]
    fn rejects_non_square_and_non_hermitian() {
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            eigh(&rect),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        let nh = Matrix::from_vec(
            2,
            2,
            vec![Complex::ONE, Complex::I, Complex::I, Complex::ONE],
        )
        .unwrap();
        assert!(matches!(eigh(&nh), Err(LinalgError::NotHermitian { .. })));
    }

    #[test]
    fn reconstruction_matches_input() {
        for seed in 1..5u64 {
            let a = hermitian_from_seed(8, seed);
            let eig = eigh(&a).unwrap();
            let rec = eig.reconstruct();
            let mut diff: f64 = 0.0;
            for r in 0..8 {
                for c in 0..8 {
                    diff = diff.max((rec.get(r, c) - a.get(r, c)).abs());
                }
            }
            assert!(diff < 1e-9, "seed {seed}: reconstruction error {diff}");
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = hermitian_from_seed(10, 42);
        let eig = eigh(&a).unwrap();
        let vhv = eig.vectors.adjoint().mul(&eig.vectors).unwrap();
        for r in 0..10 {
            for c in 0..10 {
                let expect = if r == c { Complex::ONE } else { Complex::ZERO };
                assert!((vhv.get(r, c) - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn eigenvalues_are_sorted_descending() {
        let a = hermitian_from_seed(12, 7);
        let eig = eigh(&a).unwrap();
        for w in eig.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn trace_is_preserved() {
        let a = hermitian_from_seed(9, 3);
        let trace: f64 = (0..9).map(|i| a.get(i, i).re).sum();
        let eig = eigh(&a).unwrap();
        let sum: f64 = eig.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn satisfies_eigen_equation() {
        let a = hermitian_from_seed(6, 11);
        let eig = eigh(&a).unwrap();
        for k in 0..6 {
            let v = eig.vector(k);
            let av = a.mul_vec(&v).unwrap();
            for i in 0..6 {
                let expect = v[i].scale(eig.values[k]);
                assert!((av[i] - expect).abs() < 1e-9, "pair {k}, row {i}");
            }
        }
    }

    #[test]
    fn positive_semidefinite_gram_matrix_has_nonnegative_eigenvalues() {
        // G = B^H B is PSD by construction.
        let b = hermitian_from_seed(7, 19);
        let g = b.adjoint().mul(&b).unwrap();
        let eig = eigh(&g).unwrap();
        for &v in &eig.values {
            assert!(v > -1e-9);
        }
    }

    #[test]
    fn vector_accessor_panics_out_of_range() {
        let a = hermitian_from_seed(3, 2);
        let eig = eigh(&a).unwrap();
        let result = std::panic::catch_unwind(|| eig.vector(5));
        assert!(result.is_err());
    }
}

//! # ilt-linalg
//!
//! Dense complex matrices and a Hermitian eigensolver.
//!
//! The workspace uses this crate in exactly one (but crucial) place: the
//! sum-of-coherent-systems (SOCS) decomposition of the Hopkins transmission
//! cross-coefficient operator. The TCC restricted to the pupil band-limit is
//! a small Hermitian positive semi-definite matrix; its eigendecomposition
//! yields the optical kernels `(w_i, h_i)` consumed by Eq. (1) of the paper.
//!
//! * [`Matrix`] — dense row-major complex matrix with multiplication,
//!   adjoints, and norms;
//! * [`eigh`] / [`eigh_with`] — cyclic complex Jacobi eigendecomposition,
//!   returning eigenvalues in descending order with orthonormal vectors.
//!
//! # Examples
//!
//! ```
//! use ilt_fft::Complex;
//! use ilt_linalg::{eigh, Matrix};
//!
//! # fn main() -> Result<(), ilt_linalg::LinalgError> {
//! // A rank-one projector has eigenvalues {1, 0}.
//! let a = Matrix::from_fn(2, 2, |r, c| {
//!     if r == 0 && c == 0 { Complex::ONE } else { Complex::ZERO }
//! });
//! let eig = eigh(&a)?;
//! assert!((eig.values[0] - 1.0).abs() < 1e-12);
//! assert!(eig.values[1].abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod jacobi;
mod matrix;

pub use error::LinalgError;
pub use jacobi::{eigh, eigh_with, Eigendecomposition, JacobiOptions};
pub use matrix::Matrix;

//! Dense complex matrices with just enough functionality for SOCS kernel
//! extraction: construction, Hermitian checks, multiplication, and norms.

use ilt_fft::Complex;

use crate::error::LinalgError;

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use ilt_linalg::Matrix;
/// use ilt_fft::Complex;
///
/// let m = Matrix::from_fn(2, 2, |r, c| Complex::from_re((r * 2 + c) as f64));
/// assert_eq!(m.get(1, 0), Complex::from_re(2.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Matrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, Complex::ONE);
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn<F: FnMut(usize, usize) -> Complex>(rows: usize, cols: usize, mut f: F) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from an existing row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Complex {
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: Complex) {
        self.data[row * self.cols + col] = value;
    }

    /// Borrow of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// A row of the matrix as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    #[inline]
    pub fn row(&self, row: usize) -> &[Complex] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r).conj())
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if inner dimensions differ.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == Complex::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    let v = out.get(r, c).mul_add(a, rhs.get(k, c));
                    out.set(r, c, v);
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Complex]) -> Result<Vec<Complex>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (v.len(), 1),
            });
        }
        let out = (0..self.rows)
            .map(|r| {
                v.iter().enumerate().fold(Complex::ZERO, |acc, (c, value)| {
                    acc.mul_add(self.get(r, c), *value)
                })
            })
            .collect();
        Ok(out)
    }

    /// Frobenius norm `sqrt(sum |a_ij|^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Sum of squared moduli of strictly off-diagonal entries. This is the
    /// quantity the Jacobi sweep drives to zero.
    pub fn off_diagonal_sqr(&self) -> f64 {
        let mut acc = 0.0;
        for r in 0..self.rows {
            for c in 0..self.cols {
                if r != c {
                    acc += self.get(r, c).norm_sqr();
                }
            }
        }
        acc
    }

    /// Maximum deviation from Hermitian symmetry, `max |a_ij - conj(a_ji)|`.
    /// Zero (to rounding) for a valid TCC matrix.
    pub fn hermitian_defect(&self) -> f64 {
        if !self.is_square() {
            return f64::INFINITY;
        }
        let mut worst: f64 = 0.0;
        for r in 0..self.rows {
            for c in r..self.cols {
                worst = worst.max((self.get(r, c) - self.get(c, r).conj()).abs());
            }
        }
        worst
    }

    /// Returns `true` if the matrix is Hermitian within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.hermitian_defect() <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(!z.is_square());
        assert_eq!(z.get(1, 2), Complex::ZERO);

        let i = Matrix::identity(3);
        assert!(i.is_square());
        assert_eq!(i.get(1, 1), Complex::ONE);
        assert_eq!(i.get(0, 1), Complex::ZERO);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        let _ = Matrix::zeros(0, 3);
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(Matrix::from_vec(2, 2, vec![Complex::ZERO; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![Complex::ZERO; 4]).is_ok());
    }

    #[test]
    fn adjoint_conjugates_and_transposes() {
        let m = Matrix::from_fn(2, 3, |r, c| Complex::new(r as f64, c as f64));
        let a = m.adjoint();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 2);
        assert_eq!(a.get(2, 1), Complex::new(1.0, -2.0));
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let m = Matrix::from_fn(3, 3, |r, c| {
            Complex::new((r + c) as f64, r as f64 - c as f64)
        });
        let i = Matrix::identity(3);
        assert_eq!(m.mul(&i).unwrap(), m);
        assert_eq!(i.mul(&m).unwrap(), m);
    }

    #[test]
    fn mul_matches_hand_computation() {
        let a = Matrix::from_vec(
            2,
            2,
            vec![
                Complex::from_re(1.0),
                Complex::from_re(2.0),
                Complex::from_re(3.0),
                Complex::from_re(4.0),
            ],
        )
        .unwrap();
        let b = Matrix::from_vec(
            2,
            2,
            vec![
                Complex::from_re(5.0),
                Complex::from_re(6.0),
                Complex::from_re(7.0),
                Complex::from_re(8.0),
            ],
        )
        .unwrap();
        let c = a.mul(&b).unwrap();
        assert_eq!(c.get(0, 0), Complex::from_re(19.0));
        assert_eq!(c.get(0, 1), Complex::from_re(22.0));
        assert_eq!(c.get(1, 0), Complex::from_re(43.0));
        assert_eq!(c.get(1, 1), Complex::from_re(50.0));
    }

    #[test]
    fn mul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn mul_vec_works() {
        let m = Matrix::from_vec(
            2,
            2,
            vec![Complex::ONE, Complex::I, Complex::ZERO, Complex::ONE],
        )
        .unwrap();
        let v = vec![Complex::from_re(2.0), Complex::from_re(3.0)];
        let out = m.mul_vec(&v).unwrap();
        assert_eq!(out[0], Complex::new(2.0, 3.0));
        assert_eq!(out[1], Complex::from_re(3.0));
        assert!(m.mul_vec(&[Complex::ZERO]).is_err());
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(
            2,
            2,
            vec![
                Complex::from_re(3.0),
                Complex::from_re(4.0),
                Complex::ZERO,
                Complex::ZERO,
            ],
        )
        .unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((m.off_diagonal_sqr() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn hermitian_detection() {
        let h = Matrix::from_vec(
            2,
            2,
            vec![
                Complex::from_re(1.0),
                Complex::new(0.0, 2.0),
                Complex::new(0.0, -2.0),
                Complex::from_re(3.0),
            ],
        )
        .unwrap();
        assert!(h.is_hermitian(1e-12));
        assert_eq!(h.hermitian_defect(), 0.0);

        let nh = Matrix::from_vec(
            2,
            2,
            vec![Complex::ONE, Complex::I, Complex::I, Complex::ONE],
        )
        .unwrap();
        assert!(!nh.is_hermitian(1e-12));
        assert!(!Matrix::zeros(2, 3).is_hermitian(1e-12));
    }

    #[test]
    fn row_slice() {
        let m = Matrix::from_fn(2, 3, |r, c| Complex::from_re((r * 3 + c) as f64));
        assert_eq!(m.row(1)[2], Complex::from_re(5.0));
        assert_eq!(m.as_slice().len(), 6);
    }
}

//! Micro-benchmarks of the FFT substrate: the primitive every ILT
//! iteration is built from (2Nk + 2 transforms per iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ilt_fft::{spectral, Complex, Fft2d, FftPlan};

fn signal(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::new((i as f64 * 0.13).sin(), (i as f64 * 0.37).cos()))
        .collect()
}

fn bench_fft_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_1d");
    for n in [128usize, 256, 512, 1024] {
        let plan = FftPlan::new(n).expect("plan");
        let data = signal(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(&mut buf).expect("fft");
                buf
            })
        });
    }
    group.finish();
}

fn bench_fft_2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_2d");
    for n in [64usize, 128, 256] {
        let fft = Fft2d::new(n, n).expect("plan");
        let data = signal(n * n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                fft.forward(&mut buf).expect("fft");
                buf
            })
        });
    }
    group.finish();
}

fn bench_spectral_ops(c: &mut Criterion) {
    let n = 256;
    let p = 31;
    let spectrum = signal(n * n);
    let block = signal(p * p);
    c.bench_function("spectral_crop_lowfreq", |b| {
        b.iter(|| spectral::crop_lowfreq(&spectrum, n, p).expect("crop"))
    });
    c.bench_function("spectral_embed_lowfreq", |b| {
        b.iter(|| spectral::embed_lowfreq(&block, p, n).expect("embed"))
    });
    c.bench_function("spectral_upsample_s2", |b| {
        b.iter(|| spectral::upsample_centered(&block, p, 2).expect("upsample"))
    });
}

criterion_group!(benches, bench_fft_1d, bench_fft_2d, bench_spectral_ops);
criterion_main!(benches);

//! Benchmarks of tile partitioning, the two assembly operators, and the
//! stitch-loss metric — the non-solver costs of every full-chip flow.

use criterion::{criterion_group, criterion_main, Criterion};
use ilt_layout::{generate_clip, GeneratorConfig};
use ilt_metrics::{stitch_loss, StitchConfig};
use ilt_tile::{
    assemble, multi_coloring, restrict, weight_map, AssemblyMode, Partition, PartitionConfig,
};

fn bench_tile_ops(c: &mut Criterion) {
    let clip = 256usize;
    let partition = Partition::new(
        clip,
        clip,
        PartitionConfig {
            tile: 128,
            overlap: 64,
        },
    )
    .expect("partition");
    let layout = generate_clip(&GeneratorConfig::with_size(clip), 7).to_real();
    let tiles: Vec<_> = partition
        .tiles()
        .iter()
        .map(|t| restrict(&layout, t))
        .collect();

    c.bench_function("partition_new_256", |b| {
        b.iter(|| {
            Partition::new(
                clip,
                clip,
                PartitionConfig {
                    tile: 128,
                    overlap: 64,
                },
            )
            .expect("partition")
        })
    });
    c.bench_function("restrict_9_tiles", |b| {
        b.iter(|| {
            partition
                .tiles()
                .iter()
                .map(|t| restrict(&layout, t))
                .collect::<Vec<_>>()
        })
    });
    c.bench_function("assemble_restricted_256", |b| {
        b.iter(|| assemble(&partition, &tiles, AssemblyMode::Restricted).expect("assemble"))
    });
    c.bench_function("assemble_weighted_256", |b| {
        b.iter(|| {
            assemble(
                &partition,
                &tiles,
                AssemblyMode::weighted_default(&partition),
            )
            .expect("assemble")
        })
    });
    c.bench_function("weight_map_weighted", |b| {
        b.iter(|| weight_map(&partition, 4, AssemblyMode::weighted_default(&partition)))
    });
    c.bench_function("multi_coloring", |b| b.iter(|| multi_coloring(&partition)));

    let bits = layout.threshold(0.5);
    let lines = partition.stitch_lines();
    c.bench_function("stitch_loss_metric_256", |b| {
        b.iter(|| stitch_loss(&bits, &lines, &StitchConfig::paper_default()))
    });
}

criterion_group!(benches, bench_tile_ops);
criterion_main!(benches);

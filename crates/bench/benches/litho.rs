//! Benchmarks of the lithography substrate: kernel construction, forward
//! aerial imaging (Eq. (2)), the scaled large-area variant (Eq. (3)), and
//! the adjoint gradient — the three costs that dominate every flow.

use criterion::{criterion_group, criterion_main, Criterion};
use ilt_grid::{Grid, RealGrid};
use ilt_layout::{generate_clip, GeneratorConfig};
use ilt_litho::{KernelSet, LithoBank, OpticsConfig, ResistModel};
use ilt_opt::evaluate_loss;

fn mask(n: usize) -> RealGrid {
    generate_clip(&GeneratorConfig::with_size(n), 5).to_real()
}

fn bench_kernel_build(c: &mut Criterion) {
    let cfg = OpticsConfig::test_small();
    c.bench_function("kernels_build_test_small", |b| {
        b.iter(|| KernelSet::build(&cfg, false).expect("kernels"))
    });
    let set = KernelSet::build(&cfg, false).expect("kernels");
    c.bench_function("kernels_scale_s2", |b| {
        b.iter(|| set.scaled(2).expect("scale"))
    });
}

fn bench_simulation(c: &mut Criterion) {
    let bank = LithoBank::new(OpticsConfig::m1_default(), ResistModel::m1_default()).expect("bank");
    let n = bank.config().base_n;
    let tile_mask = mask(n);
    let system = bank.system(n, 1).expect("system");
    c.bench_function("aerial_image_tile_128", |b| {
        b.iter(|| {
            system
                .aerial(&tile_mask, ilt_litho::Corner::Nominal)
                .expect("sim")
        })
    });

    // Eq. (3): full-clip simulation at 2x region scale.
    let clip_mask = mask(2 * n);
    let inspection = bank.system(2 * n, 2).expect("system");
    c.bench_function("aerial_image_clip_256_s2", |b| {
        b.iter(|| {
            inspection
                .aerial(&clip_mask, ilt_litho::Corner::Nominal)
                .expect("sim")
        })
    });

    // Eq. (9): coarse-grid simulation of a downsampled clip.
    let coarse_mask = ilt_grid::resample::downsample(&clip_mask, 2);
    let coarse = bank.system(n, 2).expect("system");
    c.bench_function("aerial_image_coarse_128_s2", |b| {
        b.iter(|| {
            coarse
                .aerial(&coarse_mask, ilt_litho::Corner::Nominal)
                .expect("sim")
        })
    });

    // One full forward + adjoint pass (the per-iteration ILT cost).
    let target = Grid::from_fn(n, n, |x, y| tile_mask.get(x, y));
    c.bench_function("ilt_iteration_forward_adjoint_128", |b| {
        b.iter(|| {
            let state = system.simulate(&tile_mask).expect("sim");
            let eval = evaluate_loss(system.resist(), &state.intensity, &target);
            system.gradient(&state, &eval.dldi).expect("grad")
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_kernel_build, bench_simulation
}
criterion_main!(benches);

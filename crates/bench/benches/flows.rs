//! End-to-end flow benchmarks at the tiny test scale — the relative costs
//! behind the TAT column of Table 1 (divide-and-conquer vs full-chip vs
//! multigrid-Schwarz) and the Fig. 7 heal pass.

use criterion::{criterion_group, criterion_main, Criterion};
use ilt_core::flows::{divide_and_conquer, full_chip, multigrid_schwarz, stitch_and_heal};
use ilt_core::ExperimentConfig;
use ilt_layout::generate_clip;
use ilt_litho::{LithoBank, ResistModel};
use ilt_opt::PixelIlt;
use ilt_tile::TileExecutor;

fn bench_flows(c: &mut Criterion) {
    let config = ExperimentConfig::test_tiny();
    let bank = LithoBank::new(config.optics, ResistModel::m1_default()).expect("bank");
    let target = generate_clip(&config.generator, 1);
    let executor = TileExecutor::sequential();
    let solver = PixelIlt::new();

    c.bench_function("flow_divide_and_conquer_tiny", |b| {
        b.iter(|| divide_and_conquer(&config, &bank, &target, &solver, &executor).expect("flow"))
    });
    c.bench_function("flow_full_chip_tiny", |b| {
        b.iter(|| full_chip(&config, &bank, &target, &solver).expect("flow"))
    });
    c.bench_function("flow_multigrid_schwarz_tiny", |b| {
        b.iter(|| multigrid_schwarz(&config, &bank, &target, &solver, &executor).expect("flow"))
    });

    let dnc = divide_and_conquer(&config, &bank, &target, &solver, &executor).expect("flow");
    c.bench_function("flow_stitch_and_heal_tiny", |b| {
        b.iter(|| {
            stitch_and_heal(&config, &bank, &target, &dnc.mask, &solver, &executor).expect("flow")
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_flows
}
criterion_main!(benches);

//! Benchmarks of the two single-tile solvers at matched iteration budgets,
//! plus the signed-distance reinitialisation the level-set solver pays for
//! — explaining the TAT gap between the GLS-ILT and Multi-level-ILT
//! columns of Table 1.

use criterion::{criterion_group, criterion_main, Criterion};
use ilt_grid::{Grid, Rect};
use ilt_litho::{LithoBank, OpticsConfig, ResistModel};
use ilt_opt::{
    signed_distance, LevelSetIlt, PixelIlt, PixelIltConfig, SolveContext, SolveRequest, TileSolver,
};

fn bench_solvers(c: &mut Criterion) {
    let bank = LithoBank::new(OpticsConfig::test_small(), ResistModel::m1_default()).expect("bank");
    let n = bank.config().base_n;
    // Hand-drawn target: two wires and a stub (the generator needs larger
    // clips than the 64-pixel test grid).
    let mut target = Grid::new(n, n, 0.0);
    target.fill_rect(Rect::new(10, 14, 54, 24), 1.0);
    target.fill_rect(Rect::new(10, 38, 40, 48), 1.0);
    target.fill_rect(Rect::new(46, 38, 54, 48), 1.0);
    let ctx = SolveContext {
        bank: &bank,
        n,
        scale: 1,
    };
    let iterations = 10;

    c.bench_function("pixel_ilt_10iter_64", |b| {
        let solver = PixelIlt::with_config(PixelIltConfig::single_level());
        b.iter(|| {
            solver
                .solve(&ctx, &SolveRequest::new(&target, &target, iterations))
                .expect("solve")
        })
    });
    c.bench_function("multi_level_ilt_10iter_64", |b| {
        let solver = PixelIlt::new();
        b.iter(|| {
            solver
                .solve(&ctx, &SolveRequest::new(&target, &target, iterations))
                .expect("solve")
        })
    });
    c.bench_function("gls_ilt_10iter_64", |b| {
        let solver = LevelSetIlt::new();
        b.iter(|| {
            solver
                .solve(&ctx, &SolveRequest::new(&target, &target, iterations))
                .expect("solve")
        })
    });
    c.bench_function("signed_distance_64", |b| {
        let bits = target.threshold(0.5);
        b.iter(|| signed_distance(&bits))
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_solvers
}
criterion_main!(benches);

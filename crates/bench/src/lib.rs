//! # ilt-bench
//!
//! Shared plumbing for the experiment binaries that regenerate every table
//! and figure of the paper's evaluation (see `DESIGN.md` for the
//! experiment-to-binary index), plus Criterion micro-benchmarks.
//!
//! Environment knobs honoured by all binaries:
//!
//! * `ILT_SCALE` — `default` (the paper-ratio setup) or `tiny` (fast smoke
//!   runs);
//! * `ILT_CASES` — number of benchmark clips (default 20, the paper's
//!   count);
//! * `ILT_WORKERS` — worker threads for per-tile execution (default 1);
//! * `ILT_INNER_THREADS` — threads for intra-tile (per-kernel / FFT row
//!   batch) parallelism (default 1). Capped so
//!   `ILT_WORKERS x ILT_INNER_THREADS` never exceeds the available cores;
//! * `ILT_OUT` — output directory for CSV/PGM artifacts (default
//!   `results/`);
//! * `ILT_TRACE` — `1`/`true`/`on`/`yes` enables telemetry collection
//!   (spans, counters, histograms) for the run;
//! * `ILT_TRACE_OUT` — directory for the trace artifacts written by
//!   [`HarnessOptions::finish_run`] (default: the `ILT_OUT` directory).
//!
//! Invalid values of `ILT_SCALE`, `ILT_CASES`, `ILT_WORKERS`, or
//! `ILT_INNER_THREADS` are reported on stderr (naming the variable and the
//! fallback used) instead of being silently ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::PathBuf;

use ilt_core::ExperimentConfig;
use ilt_litho::{LithoBank, ResistModel};
use ilt_telemetry::Telemetry;
use ilt_tile::TileExecutor;

/// Runtime options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Experiment configuration (scale-dependent).
    pub config: ExperimentConfig,
    /// The scale name the configuration was derived from (`"default"` or
    /// `"tiny"`).
    pub scale: String,
    /// Number of benchmark clips to run.
    pub cases: usize,
    /// Tile executor.
    pub workers: usize,
    /// Intra-tile worker threads (per-kernel / FFT row-batch parallelism),
    /// already capped against `workers` so the product stays within the
    /// available cores.
    pub inner_threads: usize,
    /// Artifact output directory.
    pub out_dir: PathBuf,
}

impl HarnessOptions {
    /// Reads options from the environment (see the crate docs),
    /// initialises telemetry collection from `ILT_TRACE`, and arms the
    /// fault-injection registry from `ILT_FAULTS` (fault drills run the
    /// same binaries as clean benchmarks).
    pub fn from_env() -> Self {
        ilt_telemetry::init_from_env();
        ilt_fault::configure_from_env();
        let scale = scale_or_warn(std::env::var("ILT_SCALE").ok());
        let config = match scale.as_str() {
            "tiny" => ExperimentConfig::test_tiny(),
            _ => ExperimentConfig::paper_default(),
        };
        let cases =
            parse_or_warn("ILT_CASES", std::env::var("ILT_CASES").ok(), 20usize).clamp(1, 20);
        let workers =
            parse_or_warn("ILT_WORKERS", std::env::var("ILT_WORKERS").ok(), 1usize).max(1);
        let inner_threads = capped_inner_threads(
            parse_or_warn(
                "ILT_INNER_THREADS",
                std::env::var("ILT_INNER_THREADS").ok(),
                1usize,
            )
            .max(1),
            workers,
            ilt_par::available_cores(),
        );
        // Publish the budget so simulators built anywhere in the process
        // (sessions, solvers, serve jobs) pick it up.
        ilt_par::set_inner_threads(inner_threads);
        let out_dir = std::env::var("ILT_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        HarnessOptions {
            config,
            scale,
            cases,
            workers,
            inner_threads,
            out_dir,
        }
    }

    /// Builds a private kernel bank for the configured optics. Prefer
    /// [`session`](Self::session), which shares the bank process-wide and
    /// carries the prebuilt inspection system.
    ///
    /// # Panics
    ///
    /// Panics if kernel construction fails — unrecoverable for a harness.
    pub fn bank(&self) -> LithoBank {
        LithoBank::new(self.config.optics, ResistModel::m1_default())
            .expect("kernel bank construction failed")
    }

    /// Prepares an [`ilt_core::Session`] for the configured experiment:
    /// the kernel bank (deduplicated process-wide via
    /// [`ilt_litho::shared_bank`], so repeated sessions are cache hits)
    /// plus the full-clip inspection system built once up front. Multi-case
    /// binaries should run everything through this so TCC/SOCS kernel
    /// construction and inspection setup happen once, not per case.
    ///
    /// # Panics
    ///
    /// Panics if kernel or inspection construction fails — unrecoverable
    /// for a harness.
    pub fn session(&self) -> ilt_core::Session {
        ilt_core::Session::new(self.config.clone()).expect("session setup failed")
    }

    /// The tile executor for the configured worker count.
    pub fn executor(&self) -> TileExecutor {
        TileExecutor::new(self.workers)
    }

    /// Ensures the artifact directory exists and returns a path inside it.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn artifact(&self, name: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("cannot create output directory");
        self.out_dir.join(name)
    }

    /// Finalises a run: drains the telemetry collected since startup and
    /// writes the machine-readable artifacts.
    ///
    /// Always writes `report.json` (schema `ilt-report/v2`) into the
    /// artifact directory. When tracing is enabled (`ILT_TRACE=1`), also
    /// writes `<binary>_events.jsonl` and `<binary>_trace.json` (Chrome
    /// `trace_event` format) into the trace directory (`ILT_TRACE_OUT`,
    /// default: the artifact directory), renders the spatial diagnostic
    /// maps collected by `ilt-diag` (per-case EPE hotspot / seam mismatch /
    /// MRC overlay PGMs plus a `tile_quality.csv` matrix), and prints the
    /// span-tree summary.
    ///
    /// # Panics
    ///
    /// Panics if an artifact cannot be written — unrecoverable for a
    /// harness.
    pub fn finish_run(&self, binary: &str) {
        let trace_enabled = ilt_telemetry::enabled();
        let tele = ilt_telemetry::drain();
        let diag = ilt_diag::sink::drain();
        let anomalies = ilt_diag::anomalies_from(&tele);
        let report = render_report(binary, self, &tele, trace_enabled, &diag, &anomalies);
        let path = self.artifact("report.json");
        std::fs::write(&path, report).expect("cannot write report.json");
        println!("wrote {}", path.display());
        if trace_enabled {
            let dir = std::env::var("ILT_TRACE_OUT")
                .map(PathBuf::from)
                .unwrap_or_else(|_| self.out_dir.clone());
            std::fs::create_dir_all(&dir).expect("cannot create trace output directory");
            let events_path = dir.join(format!("{binary}_events.jsonl"));
            std::fs::write(&events_path, tele.to_jsonl()).expect("cannot write JSONL event log");
            let trace_path = dir.join(format!("{binary}_trace.json"));
            std::fs::write(&trace_path, tele.to_chrome_trace()).expect("cannot write Chrome trace");
            println!("wrote {}", events_path.display());
            println!("wrote {}", trace_path.display());
            write_diag_artifacts(&dir, &diag);
            print!("{}", tele.render_tree());
        }
    }
}

/// Extra top-level report sections registered by the running binary before
/// [`HarnessOptions::finish_run`], keyed by section name. The ECO smoke
/// drill uses this to attach its `incremental` section (reuse accounting,
/// cold-vs-warm timing, quality deltas) to the standard `ilt-report/v2`
/// document, where `report_diff` gates it alongside latency and quality.
static EXTRA_SECTIONS: std::sync::Mutex<Vec<(String, String)>> = std::sync::Mutex::new(Vec::new());

/// Registers (or replaces) an extra top-level `report.json` section. The
/// value must be a complete JSON document; it is embedded verbatim under
/// the given key by the next [`HarnessOptions::finish_run`]. Section names
/// must not collide with the standard `ilt-report/v2` keys — consumers
/// treat unknown sections as optional, so a report with extras stays
/// backwards-compatible.
pub fn set_report_section(name: &str, json: String) {
    let mut sections = EXTRA_SECTIONS.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(slot) = sections.iter_mut().find(|(n, _)| n == name) {
        slot.1 = json;
    } else {
        sections.push((name.to_string(), json));
    }
}

/// Snapshot of the registered extra sections, in registration order.
fn extra_sections() -> Vec<(String, String)> {
    EXTRA_SECTIONS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// Replaces every non-alphanumeric character with `_` so case and method
/// labels (which may contain spaces, colons, or slashes) form safe
/// filenames.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Writes the spatial diagnostic maps: for every traced case×method, the
/// EPE hotspot grid, seam mismatch map, and MRC overlay as PGM images,
/// plus a `tile_quality.csv` with one row per tile across all cases.
fn write_diag_artifacts(dir: &std::path::Path, diag: &ilt_diag::RunDiagnostics) {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for case in &diag.cases {
        let stem = format!("{}_{}", sanitize(&case.case), sanitize(&case.method));
        for (suffix, map) in [
            ("epe", &case.epe_heatmap),
            ("seam", &case.seam_map),
            ("mrc", &case.mrc_overlay),
        ] {
            let path = dir.join(format!("{stem}_{suffix}.pgm"));
            ilt_grid::io::write_pgm(&path, map).expect("cannot write diagnostic heatmap");
            println!("wrote {}", path.display());
        }
        for t in &case.tiles {
            rows.push(vec![
                case.case.clone(),
                case.method.clone(),
                t.tile.to_string(),
                t.epe_gauges.to_string(),
                format!("{:.3}", t.epe_p50),
                format!("{:.3}", t.epe_p95),
                t.epe_max.to_string(),
                t.epe_violations.to_string(),
                format!("{:.6}", t.stitch),
                t.mrc.to_string(),
            ]);
        }
    }
    if !rows.is_empty() {
        let path = dir.join("tile_quality.csv");
        ilt_grid::io::write_csv(
            &path,
            &[
                "case",
                "method",
                "tile",
                "epe_gauges",
                "epe_p50",
                "epe_p95",
                "epe_max",
                "epe_violations",
                "stitch",
                "mrc",
            ],
            &rows,
        )
        .expect("cannot write tile quality matrix");
        println!("wrote {}", path.display());
    }
}

/// Validates an `ILT_SCALE` value, warning on stderr for anything other
/// than the two recognised scales.
fn scale_or_warn(raw: Option<String>) -> String {
    match raw {
        Some(s) if s == "default" || s == "tiny" => s,
        Some(other) => {
            eprintln!(
                "warning: invalid ILT_SCALE={other:?} (expected \"default\" or \"tiny\"); \
                 using default \"default\""
            );
            "default".to_string()
        }
        None => "default".to_string(),
    }
}

/// Caps the inner-thread budget so `tiles x inner <= cores`, warning when
/// the requested value would oversubscribe the machine alongside the tile
/// workers.
fn capped_inner_threads(requested: usize, workers: usize, cores: usize) -> usize {
    if workers.saturating_mul(requested) <= cores {
        return requested;
    }
    let capped = (cores / workers.max(1)).max(1);
    if capped < requested {
        eprintln!(
            "warning: ILT_INNER_THREADS={requested} with ILT_WORKERS={workers} oversubscribes \
             {cores} cores; capping inner threads to {capped}"
        );
    }
    capped
}

/// Parses an environment value, warning on stderr (naming the variable and
/// the fallback used) when the value is present but unparsable.
fn parse_or_warn<T>(var: &str, raw: Option<String>, fallback: T) -> T
where
    T: std::str::FromStr + std::fmt::Display,
{
    match raw {
        None => fallback,
        Some(raw) => match raw.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("warning: invalid {var}={raw:?}; using default {fallback}");
                fallback
            }
        },
    }
}

/// Renders the `ilt-report/v2` run report: run parameters, per-flow stage
/// summaries (with interpolated per-tile latency percentiles), merged
/// counters/gauges/histograms, the per-stage latency budget (queue wait
/// vs kernel build vs tile classes vs assembly), the diagnostics section
/// (convergence matrix, quality matrix, anomalies), and the nested span
/// tree. v2 is a strict superset of v1: every v1 field is unchanged, and
/// the `gauges`/`latency_budget`/`profile`/`memory` sections are optional
/// for report consumers (`report_diff` skips sections absent from either
/// side). `profile` appears only when the `ilt-prof` CPU sampler collected
/// anything this run; `memory` appears whenever RSS is readable
/// (`/proc/self/status`) or allocation tracking is on.
fn render_report(
    binary: &str,
    opts: &HarnessOptions,
    tele: &Telemetry,
    trace_enabled: bool,
    diag: &ilt_diag::RunDiagnostics,
    anomalies: &[ilt_diag::AnomalyEvent],
) -> String {
    use ilt_telemetry::json;
    let mut out = String::from("{\"schema\":\"ilt-report/v2\",\"binary\":");
    json::push_str_literal(&mut out, binary);
    out.push_str(",\"scale\":");
    json::push_str_literal(&mut out, &opts.scale);
    let _ = write!(
        out,
        ",\"cases\":{},\"workers\":{},\"inner_threads\":{},\"trace_enabled\":{}",
        opts.cases, opts.workers, opts.inner_threads, trace_enabled
    );
    out.push_str(",\"flows\":[");
    for (i, flow) in tele.flow_summaries().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::push_str_literal(&mut out, &flow.name);
        out.push_str(",\"seconds\":");
        json::push_f64(&mut out, flow.seconds);
        out.push_str(",\"stages\":[");
        for (j, stage) in flow.stages.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"label\":");
            json::push_str_literal(&mut out, &stage.label);
            out.push_str(",\"seconds\":");
            json::push_f64(&mut out, stage.seconds);
            let _ = write!(
                out,
                ",\"tile_count\":{},\"tile_seconds\":",
                stage.tile_count
            );
            json::push_f64(&mut out, stage.tile_seconds);
            out.push_str(",\"assembly_seconds\":");
            json::push_f64(&mut out, stage.assembly_seconds);
            let (p50, p95, p99) = stage.tile_us_percentiles();
            out.push_str(",\"tile_us_p50\":");
            json::push_f64(&mut out, p50);
            out.push_str(",\"tile_us_p95\":");
            json::push_f64(&mut out, p95);
            out.push_str(",\"tile_us_p99\":");
            json::push_f64(&mut out, p99);
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("],\"counters\":{");
    for (i, (name, v)) in tele.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_str_literal(&mut out, name);
        let _ = write!(out, ":{v}");
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in tele.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_str_literal(&mut out, name);
        let _ = write!(
            out,
            ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            h.quantile(0.5),
            h.quantile(0.95),
            h.quantile(0.99)
        );
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in tele.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_str_literal(&mut out, name);
        out.push(':');
        json::push_f64(&mut out, *v);
    }
    out.push('}');
    for (name, section) in extra_sections() {
        out.push(',');
        json::push_str_literal(&mut out, &name);
        out.push(':');
        out.push_str(&section);
    }
    push_profile_section(&mut out);
    push_memory_section(&mut out);
    out.push_str(",\"latency_budget\":");
    out.push_str(&tele.latency_budget().to_json());
    out.push_str(",\"diagnostics\":");
    out.push_str(&ilt_diag::render_diagnostics_json(diag, anomalies));
    out.push_str(",\"spans\":");
    out.push_str(&tele.span_tree_json());
    out.push('}');
    out
}

/// Appends the optional `profile` report section: CPU-sampler state, the
/// top self-time frames, and the per-stage sample split. Skipped entirely
/// when the sampler neither ran nor collected anything, so reports from
/// unprofiled runs keep the pre-profiling shape.
fn push_profile_section(out: &mut String) {
    use ilt_telemetry::json;
    let (samples, ticks) = ilt_prof::cpu::sample_counts();
    if samples == 0 && !ilt_prof::sampler_running() {
        return;
    }
    out.push_str(",\"profile\":{\"sampler_hz\":");
    json::push_f64(out, ilt_prof::sampler_hz());
    let _ = write!(out, ",\"samples\":{samples},\"ticks\":{ticks}");
    out.push_str(",\"top_self\":[");
    for (i, (frame, n)) in ilt_prof::cpu::top_self(20).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"frame\":");
        json::push_str_literal(out, frame);
        let _ = write!(out, ",\"samples\":{n}}}");
    }
    out.push_str("],\"samples_per_stage\":{");
    for (i, (stage, n)) in ilt_prof::cpu::samples_per_stage().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_str_literal(out, stage);
        let _ = write!(out, ":{n}");
    }
    out.push_str("}}");
}

/// Appends the optional `memory` report section: current/peak RSS (the
/// field the `report_diff` `--max-rss-ratio` gate reads) plus, when the
/// tracking allocator is on, global and per-stage allocation counters.
fn push_memory_section(out: &mut String) {
    use ilt_telemetry::json;
    let rss = ilt_prof::rss::read();
    let alloc = ilt_prof::alloc::stats();
    if rss.is_none() && !alloc.enabled {
        return;
    }
    out.push_str(",\"memory\":{");
    let (current, peak) = rss.map_or((0, 0), |r| (r.current_bytes, r.peak_bytes));
    let _ = write!(
        out,
        "\"current_rss_bytes\":{current},\"peak_rss_bytes\":{peak}"
    );
    if alloc.enabled {
        let _ = write!(
            out,
            ",\"alloc\":{{\"allocated_bytes\":{},\"allocation_calls\":{},\
             \"freed_bytes\":{},\"free_calls\":{},\"live_bytes\":{},\
             \"peak_live_bytes\":{},\"stages\":{{",
            alloc.allocated_bytes,
            alloc.allocation_calls,
            alloc.freed_bytes,
            alloc.free_calls,
            alloc.live_bytes,
            alloc.peak_live_bytes
        );
        for (i, s) in alloc.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_literal(out, s.stage.name());
            let _ = write!(out, ":{{\"bytes\":{},\"calls\":{}}}", s.bytes, s.calls);
        }
        out.push_str("}}");
    }
    out.push('}');
}

/// Formats a fixed-width table row for terminal output.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        // Do not set env vars (tests run in parallel); just exercise the
        // parsing path with whatever the environment holds.
        let opts = HarnessOptions::from_env();
        assert!(opts.cases >= 1 && opts.cases <= 20);
        assert!(opts.workers >= 1);
        assert!(opts.scale == "default" || opts.scale == "tiny");
    }

    #[test]
    fn invalid_values_fall_back() {
        assert_eq!(
            parse_or_warn("ILT_CASES", Some("bogus".into()), 20usize),
            20
        );
        assert_eq!(parse_or_warn("ILT_CASES", Some("-3".into()), 20usize), 20);
        assert_eq!(parse_or_warn("ILT_CASES", Some(" 7 ".into()), 20usize), 7);
        assert_eq!(parse_or_warn("ILT_WORKERS", None, 1usize), 1);
        assert_eq!(
            parse_or_warn("ILT_INNER_THREADS", Some("x".into()), 1usize),
            1
        );
        assert_eq!(scale_or_warn(Some("tiny".into())), "tiny");
        assert_eq!(scale_or_warn(Some("huge".into())), "default");
        assert_eq!(scale_or_warn(None), "default");
    }

    #[test]
    fn report_is_valid_shape() {
        let opts = HarnessOptions {
            config: ExperimentConfig::test_tiny(),
            scale: "tiny".to_string(),
            cases: 1,
            workers: 1,
            inner_threads: 1,
            out_dir: PathBuf::from("results"),
        };
        let report = render_report(
            "smoke",
            &opts,
            &Telemetry::default(),
            false,
            &ilt_diag::RunDiagnostics::default(),
            &[],
        );
        assert!(report.starts_with("{\"schema\":\"ilt-report/v2\""));
        assert!(report.contains("\"binary\":\"smoke\""));
        assert!(report.contains("\"scale\":\"tiny\""));
        assert!(report.contains("\"trace_enabled\":false"));
        assert!(report.ends_with('}'));
        // The whole report must be well-formed JSON with the v2 sections in
        // place (empty, since no telemetry was collected).
        let json = ilt_diag::Json::parse(&report).expect("report parses");
        assert_eq!(
            json.get("schema").and_then(|s| s.as_str()),
            Some("ilt-report/v2")
        );
        let diagnostics = json.get("diagnostics").expect("diagnostics section");
        for key in ["convergence", "quality", "anomalies", "degraded"] {
            let arr = diagnostics
                .get(key)
                .and_then(|v| v.as_arr())
                .unwrap_or_else(|| panic!("diagnostics.{key} is an array"));
            assert!(arr.is_empty());
        }
        assert_eq!(
            diagnostics.get("tiles_degraded").and_then(|v| v.as_u64()),
            Some(0),
            "a clean run reports zero degraded tiles"
        );
        let budget = json.get("latency_budget").expect("latency_budget section");
        for key in [
            "queue_wait_s",
            "kernel_build_s",
            "coarse_tiles_s",
            "fine_tiles_s",
            "assembly_s",
            "unattributed_s",
        ] {
            assert!(
                budget.get(key).and_then(|v| v.as_f64()).is_some(),
                "latency_budget.{key} is a number"
            );
        }
        assert!(json.get("gauges").is_some(), "gauges section present");
        // On Linux the RSS reader always has something to say, so every
        // report carries the memory section the RSS regression gate reads.
        #[cfg(target_os = "linux")]
        {
            let memory = json.get("memory").expect("memory section");
            assert!(
                memory
                    .get("peak_rss_bytes")
                    .and_then(|v| v.as_f64())
                    .is_some_and(|v| v > 0.0),
                "peak_rss_bytes is a positive number"
            );
        }
    }

    #[test]
    fn profile_section_renders_after_a_sample() {
        ilt_telemetry::set_enabled(true);
        ilt_telemetry::flight::set_recording(true);
        {
            let mut flow = ilt_telemetry::span(ilt_telemetry::names::FLOW);
            flow.add_field("name", "profile shape test");
            ilt_prof::sample_now();
        }
        let opts = HarnessOptions {
            config: ExperimentConfig::test_tiny(),
            scale: "tiny".to_string(),
            cases: 1,
            workers: 1,
            inner_threads: 1,
            out_dir: PathBuf::from("results"),
        };
        let report = render_report(
            "smoke",
            &opts,
            &Telemetry::default(),
            false,
            &ilt_diag::RunDiagnostics::default(),
            &[],
        );
        let json = ilt_diag::Json::parse(&report).expect("report parses");
        let profile = json.get("profile").expect("profile section");
        assert!(
            profile
                .get("samples")
                .and_then(|v| v.as_u64())
                .is_some_and(|v| v > 0),
            "sample recorded"
        );
        assert!(
            profile
                .get("top_self")
                .and_then(|v| v.as_arr())
                .is_some_and(|a| !a.is_empty()),
            "top_self has the sampled frame"
        );
        assert!(
            profile.get("samples_per_stage").is_some(),
            "samples_per_stage present"
        );
    }

    #[test]
    fn extra_sections_land_in_the_report() {
        let opts = HarnessOptions {
            config: ExperimentConfig::test_tiny(),
            scale: "tiny".to_string(),
            cases: 1,
            workers: 1,
            inner_threads: 1,
            out_dir: PathBuf::from("results"),
        };
        set_report_section("extra_section_test", "{\"speedup\":3.5}".to_string());
        // Replacement by name, not duplication.
        set_report_section("extra_section_test", "{\"speedup\":4.0}".to_string());
        let report = render_report(
            "smoke",
            &opts,
            &Telemetry::default(),
            false,
            &ilt_diag::RunDiagnostics::default(),
            &[],
        );
        let json = ilt_diag::Json::parse(&report).expect("report parses");
        assert_eq!(
            json.path(&["extra_section_test", "speedup"])
                .and_then(|v| v.as_f64()),
            Some(4.0)
        );
        assert_eq!(report.matches("extra_section_test").count(), 1);
    }

    #[test]
    fn inner_threads_capped_against_tile_workers() {
        // Within budget: untouched.
        assert_eq!(capped_inner_threads(2, 2, 8), 2);
        assert_eq!(capped_inner_threads(1, 8, 8), 1);
        // Oversubscribed: capped to cores / workers, floor 1.
        assert_eq!(capped_inner_threads(8, 2, 8), 4);
        assert_eq!(capped_inner_threads(4, 3, 8), 2);
        assert_eq!(capped_inner_threads(16, 16, 8), 1);
    }

    #[test]
    fn row_formatting() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}

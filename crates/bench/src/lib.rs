//! # ilt-bench
//!
//! Shared plumbing for the experiment binaries that regenerate every table
//! and figure of the paper's evaluation (see `DESIGN.md` for the
//! experiment-to-binary index), plus Criterion micro-benchmarks.
//!
//! Environment knobs honoured by all binaries:
//!
//! * `ILT_SCALE` — `default` (the paper-ratio setup) or `tiny` (fast smoke
//!   runs);
//! * `ILT_CASES` — number of benchmark clips (default 20, the paper's
//!   count);
//! * `ILT_WORKERS` — worker threads for per-tile execution (default 1);
//! * `ILT_OUT` — output directory for CSV/PGM artifacts (default
//!   `results/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use ilt_core::ExperimentConfig;
use ilt_litho::{LithoBank, ResistModel};
use ilt_tile::TileExecutor;

/// Runtime options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Experiment configuration (scale-dependent).
    pub config: ExperimentConfig,
    /// Number of benchmark clips to run.
    pub cases: usize,
    /// Tile executor.
    pub workers: usize,
    /// Artifact output directory.
    pub out_dir: PathBuf,
}

impl HarnessOptions {
    /// Reads options from the environment (see the crate docs).
    pub fn from_env() -> Self {
        let scale = std::env::var("ILT_SCALE").unwrap_or_else(|_| "default".to_string());
        let config = match scale.as_str() {
            "tiny" => ExperimentConfig::test_tiny(),
            _ => ExperimentConfig::paper_default(),
        };
        let cases = std::env::var("ILT_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20)
            .clamp(1, 20);
        let workers = std::env::var("ILT_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1)
            .max(1);
        let out_dir = std::env::var("ILT_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        HarnessOptions {
            config,
            cases,
            workers,
            out_dir,
        }
    }

    /// Builds the kernel bank for the configured optics (the expensive
    /// one-time setup every binary shares).
    ///
    /// # Panics
    ///
    /// Panics if kernel construction fails — unrecoverable for a harness.
    pub fn bank(&self) -> LithoBank {
        LithoBank::new(self.config.optics, ResistModel::m1_default())
            .expect("kernel bank construction failed")
    }

    /// The tile executor for the configured worker count.
    pub fn executor(&self) -> TileExecutor {
        TileExecutor::new(self.workers)
    }

    /// Ensures the artifact directory exists and returns a path inside it.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn artifact(&self, name: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("cannot create output directory");
        self.out_dir.join(name)
    }
}

/// Formats a fixed-width table row for terminal output.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        // Do not set env vars (tests run in parallel); just exercise the
        // parsing path with whatever the environment holds.
        let opts = HarnessOptions::from_env();
        assert!(opts.cases >= 1 && opts.cases <= 20);
        assert!(opts.workers >= 1);
    }

    #[test]
    fn row_formatting() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}

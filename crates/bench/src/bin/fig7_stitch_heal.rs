//! Regenerates **Fig. 7**: the 'stitch-and-heal' method \[6\] fixes the
//! original seams but its re-optimisation windows create new partition
//! edges where stitching errors reappear.
//!
//! ```text
//! cargo run --release -p ilt-bench --bin fig7_stitch_heal
//! ```

use ilt_bench::HarnessOptions;
use ilt_core::flows::{divide_and_conquer, stitch_and_heal};
use ilt_grid::io::write_bit_pgm;
use ilt_layout::suite_of_size;
use ilt_metrics::stitch_loss;
use ilt_opt::PixelIlt;
use ilt_tile::Partition;

fn main() {
    let opts = HarnessOptions::from_env();
    let bank = opts.bank();
    let executor = opts.executor();
    let clip = suite_of_size(&opts.config.generator, 1).remove(0);
    let partition =
        Partition::new(clip.size(), clip.size(), opts.config.partition).expect("partition");
    let solver = PixelIlt::new();

    println!("Fig. 7 reproduction: stitch-and-heal moves errors to new edges");
    let dnc = divide_and_conquer(&opts.config, &bank, &clip.target, &solver, &executor)
        .expect("divide-and-conquer failed");
    let healed = stitch_and_heal(
        &opts.config,
        &bank,
        &clip.target,
        &dnc.mask,
        &solver,
        &executor,
    )
    .expect("heal failed");

    let original_lines = partition.stitch_lines();
    let cfg = &opts.config.stitch;
    let before = stitch_loss(&dnc.mask.threshold(0.5), &original_lines, cfg);
    let healed_bits = healed.result.mask.threshold(0.5);
    let after_original = stitch_loss(&healed_bits, &original_lines, cfg);
    let after_new = stitch_loss(&healed_bits, &healed.new_lines, cfg);

    println!(
        "stitch loss on ORIGINAL lines: before heal {:.2} -> after heal {:.2}",
        before.total, after_original.total
    );
    println!(
        "stitch loss on the {} NEW edges created by healing: {:.2}",
        healed.new_lines.len(),
        after_new.total
    );
    if after_original.total < before.total {
        println!(
            "healing improves the original seams, but the new edges carry {:.0}% of \
             the removed loss back (paper's Fig. 7 observation)",
            100.0 * after_new.total / (before.total - after_original.total)
        );
    } else {
        println!(
            "healing failed to improve the original seams on this clip, and the new \
             edges add {:.0} more loss on top (paper's Fig. 7 observation, amplified)",
            after_new.total
        );
    }

    write_bit_pgm(
        opts.artifact("fig7_before_heal.pgm"),
        &dnc.mask.threshold(0.5),
    )
    .expect("write");
    write_bit_pgm(opts.artifact("fig7_after_heal.pgm"), &healed_bits).expect("write");
    println!(
        "wrote fig7_{{before,after}}_heal.pgm in {}",
        opts.out_dir.display()
    );

    opts.finish_run("fig7_stitch_heal");
}

//! `fullchip`: the paper-scale sweep — wall-clock and peak resident
//! memory of the multigrid-Schwarz flow as the tile grid grows from 1×1
//! to 4×4, with streaming assembly measured against hold-everything.
//!
//! For each grid the flow runs twice on the same layout: once with
//! `stream_tiles` on (tiles solved in colour order and folded into the
//! [`StreamingAssembler`](ilt_tile::StreamingAssembler) band by band) and
//! once holding every fine tile until a batch assemble. The two masks
//! must be bit-identical — streaming is a memory optimisation, not an
//! algorithm change — and at 16+ tiles the streamed resident-tile-mask
//! high-water ([`ilt_prof::residency`]) must be at most `0.6×` the
//! hold-everything one: the streamed path keeps O(one colour band) fine
//! tiles resident instead of O(T). Whole-process allocator peaks are
//! reported alongside but not gated — per-tile solver scratch dominates
//! them identically in both modes.
//!
//! Grids 2×2 and 3×3 have non-power-of-two clip sides, so quality is
//! measured with [`tiled_print_loss`] (per-tile prints over disjoint
//! cores) rather than a full-clip inspection system; the loss *density*
//! (loss / clip area) is what should stay flat as the chip grows.
//!
//! Artifacts, all in `ILT_OUT` (default `results/`):
//!
//! * `BENCH_fullchip.json` — schema `ilt-bench-trajectory/v1`; one point
//!   per tile grid with streamed/held wall seconds, streamed/held peak
//!   live-byte deltas, their ratio, and the tiled loss density;
//! * `report.json` — the usual `ilt-report/v2` carrying the `memory`
//!   section that seeds `report_diff --max-rss-ratio` via
//!   `results/baselines/fullchip.json`, plus a `fullchip` section with
//!   the worst streamed/held resident-tile ratio at 16+ tiles.
//!
//! ```text
//! ILT_SCALE=tiny cargo run --release -p ilt-bench --bin fullchip
//! ```

use std::fmt::Write as _;

use ilt_bench::HarnessOptions;
use ilt_core::experiment::{run_method, tiled_print_loss, Method};
use ilt_layout::suite_of_size;
use ilt_telemetry as tele;

// Peak-live attribution needs the tracking allocator to BE the global
// allocator; `main` then switches the counting on.
#[global_allocator]
static GLOBAL: ilt_prof::TrackingAlloc = ilt_prof::TrackingAlloc::new();

/// One measured flow run: wall clock, the allocator's live-byte
/// high-water mark relative to the live level when the run started, and
/// the resident solved-tile-mask high-water (`ilt_prof::residency`).
struct Measured {
    wall_seconds: f64,
    peak_live_delta: i64,
    peak_resident_tile_bytes: i64,
    mask: ilt_grid::RealGrid,
}

/// One trajectory point: streamed vs held on one tile-grid geometry.
struct GridPoint {
    grid: String,
    tiles: usize,
    clip: usize,
    s_max: usize,
    streamed_wall_seconds: f64,
    held_wall_seconds: f64,
    streamed_peak_live_delta: i64,
    held_peak_live_delta: i64,
    streamed_peak_resident_tile_bytes: i64,
    held_peak_resident_tile_bytes: i64,
    resident_ratio: f64,
    window_peak_rss_bytes: u64,
    loss: usize,
    loss_density: f64,
}

fn main() {
    let opts = HarnessOptions::from_env();
    tele::set_enabled(true);
    ilt_prof::alloc::set_enabled(true);
    ilt_prof::init_from_env(false);
    let tile = opts.config.partition.tile;
    let stride = tile - opts.config.partition.overlap;
    println!(
        "fullchip: scale={} tile={} stride={} workers={}",
        opts.scale, tile, stride, opts.workers
    );

    let bank = opts.bank();
    let executor = opts.executor();
    let mut points = Vec::new();
    // clip = tile + (count-1)·stride puts exactly `count` tile origins on
    // each axis (the last lands flush on the clip edge), so the sweep
    // visits the 1×1, 2×2, 3×3, and 4×4 grids of the scale's geometry.
    for count in 1usize..=4 {
        let mut config = opts.config.clone();
        config.clip = tile + (count - 1) * stride;
        // Deepest hierarchy whose coarsest level still fits the clip.
        let mut s = 1;
        while 2 * s <= config.s_max && 2 * s * tile <= config.clip {
            s *= 2;
        }
        config.s_max = s;
        config.generator.size = config.clip;
        config.validate();
        let case = suite_of_size(&config.generator, 1).remove(0);

        ilt_prof::rss::reset_window();
        config.stream_tiles = true;
        let streamed = measured_run(&config, &bank, &case.target, &executor);
        config.stream_tiles = false;
        let held = measured_run(&config, &bank, &case.target, &executor);
        ilt_prof::rss::note_window_sample();

        assert_eq!(
            streamed.mask.as_slice(),
            held.mask.as_slice(),
            "streamed and hold-everything assembly must be bit-identical"
        );

        let partition = ilt_tile::Partition::new(config.clip, config.clip, config.partition)
            .expect("partition");
        let (nx, ny) = (partition.tiles_x(), partition.tiles_y());
        let tiles = nx * ny;
        let resident_ratio = streamed.peak_resident_tile_bytes as f64
            / (held.peak_resident_tile_bytes.max(1)) as f64;
        let loss = tiled_print_loss(&config, &bank, &case.target, &streamed.mask)
            .expect("tiled inspection failed");
        let area = (config.clip * config.clip) as f64;
        let point = GridPoint {
            grid: format!("{nx}x{ny}"),
            tiles,
            clip: config.clip,
            s_max: config.s_max,
            streamed_wall_seconds: streamed.wall_seconds,
            held_wall_seconds: held.wall_seconds,
            streamed_peak_live_delta: streamed.peak_live_delta,
            held_peak_live_delta: held.peak_live_delta,
            streamed_peak_resident_tile_bytes: streamed.peak_resident_tile_bytes,
            held_peak_resident_tile_bytes: held.peak_resident_tile_bytes,
            resident_ratio,
            window_peak_rss_bytes: ilt_prof::rss::window_peak(),
            loss,
            loss_density: loss as f64 / area,
        };
        println!(
            "grid {:>3} ({:>2} tiles, clip {:>4}, s_max {}): resident {:>7.2} MiB streamed \
             vs {:>7.2} MiB held (ratio {:.2}), alloc peak {:>6.2} vs {:>6.2} MiB, \
             {:.2}s vs {:.2}s, loss density {:.4}",
            point.grid,
            point.tiles,
            point.clip,
            point.s_max,
            point.streamed_peak_resident_tile_bytes as f64 / (1 << 20) as f64,
            point.held_peak_resident_tile_bytes as f64 / (1 << 20) as f64,
            point.resident_ratio,
            point.streamed_peak_live_delta as f64 / (1 << 20) as f64,
            point.held_peak_live_delta as f64 / (1 << 20) as f64,
            point.streamed_wall_seconds,
            point.held_wall_seconds,
            point.loss_density,
        );
        // The acceptance gate: once the grid is paper-sized, holding one
        // colour band instead of every tile must bound what the flow keeps
        // resident. The gate reads the flow's own residency high-water
        // (`ilt_prof::residency`) rather than the allocator peak: per-tile
        // solver scratch dominates the process high-water mark equally in
        // both modes, so the allocator numbers (reported above and in the
        // trajectory) cannot distinguish a broken streaming path. Smaller
        // grids are reported but not gated (one band ≈ the whole grid).
        if tiles >= 16 {
            assert!(
                point.resident_ratio <= 0.6,
                "streamed resident-tile peak {} B is more than 0.6x the \
                 hold-everything peak {} B at {} tiles",
                point.streamed_peak_resident_tile_bytes,
                point.held_peak_resident_tile_bytes,
                tiles
            );
        }
        points.push(point);
    }

    // Convergence flatness across the sweep is a test concern
    // (`convergence_flatness` in ilt-core); here it is only reported.
    let worst_big_ratio = points
        .iter()
        .filter(|p| p.tiles >= 16)
        .map(|p| p.resident_ratio)
        .fold(0.0f64, f64::max);
    let mut section = String::from("{\"worst_resident_ratio_at_16_tiles\":");
    tele::json::push_f64(&mut section, worst_big_ratio);
    section.push('}');
    ilt_bench::set_report_section("fullchip", section);

    let path = opts.artifact("BENCH_fullchip.json");
    std::fs::write(&path, render_trajectory(&opts, &points)).expect("cannot write trajectory");
    println!("wrote {}", path.display());

    opts.finish_run("fullchip");
}

/// Runs `Method::Ours` once and reports wall clock plus the allocator
/// peak-live delta over the run. The delta (not absolute RSS) is what
/// separates streaming from holding: process RSS never shrinks, so after
/// the first large run it would mask any later improvement.
fn measured_run(
    config: &ilt_core::ExperimentConfig,
    bank: &ilt_litho::LithoBank,
    target: &ilt_grid::BitGrid,
    executor: &ilt_tile::TileExecutor,
) -> Measured {
    ilt_prof::alloc::reset_peak();
    ilt_prof::residency::reset();
    let live_before = ilt_prof::alloc::stats().live_bytes;
    let flow = run_method(Method::Ours, config, bank, target, executor).expect("flow failed");
    let peak = ilt_prof::alloc::stats().peak_live_bytes;
    Measured {
        wall_seconds: flow.wall_seconds,
        peak_live_delta: (peak - live_before).max(0),
        peak_resident_tile_bytes: ilt_prof::residency::peak_bytes(),
        mask: flow.mask,
    }
}

/// Renders the `ilt-bench-trajectory/v1` full-chip trajectory.
fn render_trajectory(opts: &HarnessOptions, points: &[GridPoint]) -> String {
    use tele::json;
    let mut out = String::from("{\"schema\":\"ilt-bench-trajectory/v1\",\"binary\":\"fullchip\"");
    out.push_str(",\"scale\":");
    json::push_str_literal(&mut out, &opts.scale);
    let _ = write!(out, ",\"workers\":{}", opts.workers);
    out.push_str(",\"points\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"grid\":");
        json::push_str_literal(&mut out, &p.grid);
        let _ = write!(
            out,
            ",\"tiles\":{},\"clip\":{},\"s_max\":{}",
            p.tiles, p.clip, p.s_max
        );
        out.push_str(",\"streamed_wall_seconds\":");
        json::push_f64(&mut out, p.streamed_wall_seconds);
        out.push_str(",\"held_wall_seconds\":");
        json::push_f64(&mut out, p.held_wall_seconds);
        let _ = write!(
            out,
            ",\"streamed_peak_live_bytes\":{},\"held_peak_live_bytes\":{}",
            p.streamed_peak_live_delta, p.held_peak_live_delta
        );
        let _ = write!(
            out,
            ",\"streamed_peak_resident_tile_bytes\":{},\"held_peak_resident_tile_bytes\":{}",
            p.streamed_peak_resident_tile_bytes, p.held_peak_resident_tile_bytes
        );
        out.push_str(",\"resident_ratio\":");
        json::push_f64(&mut out, p.resident_ratio);
        let _ = write!(
            out,
            ",\"window_peak_rss_bytes\":{},\"loss\":{}",
            p.window_peak_rss_bytes, p.loss
        );
        out.push_str(",\"loss_density\":");
        json::push_f64(&mut out, p.loss_density);
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

//! Extension study: the two related-work boundary treatments the paper's
//! introduction discusses — overlap-error selection \[5\] and stitch-and-heal
//! \[6\] — compared against plain divide-and-conquer, the multigrid-Schwarz
//! flow, and the full-chip reference, on the same clip.
//!
//! ```text
//! cargo run --release -p ilt-bench --bin related_baselines
//! ```

use ilt_bench::HarnessOptions;
use ilt_core::experiment::inspect_detailed;
use ilt_core::flows::{
    divide_and_conquer, full_chip, multigrid_schwarz, overlap_select, stitch_and_heal,
};
use ilt_layout::suite_of_size;
use ilt_metrics::stitch_loss;
use ilt_opt::PixelIlt;
use ilt_tile::Partition;

fn main() {
    let opts = HarnessOptions::from_env();
    let bank = opts.bank();
    let executor = opts.executor();
    let clip = suite_of_size(&opts.config.generator, 1).remove(0);
    let inspection = bank
        .system(opts.config.clip, opts.config.inspection_scale())
        .expect("inspection");
    let partition =
        Partition::new(clip.size(), clip.size(), opts.config.partition).expect("partition");
    let lines = partition.stitch_lines();
    let solver = PixelIlt::new();

    println!("Boundary-treatment comparison on {}:", clip.name);
    println!(
        "{:<22} {:>7} {:>8} {:>10} {:>8}",
        "method", "L2", "PVBand", "stitch", "TAT(s)"
    );

    let report = |name: &str, flow: &ilt_core::flows::FlowResult| {
        let (q, r) = inspect_detailed(&opts.config, &inspection, &lines, &clip.target, &flow.mask)
            .expect("inspect");
        println!(
            "{name:<22} {:>7} {:>8} {:>10.1} {:>8.2}",
            q.l2, q.pvband, r.total, flow.wall_seconds
        );
    };

    let dnc =
        divide_and_conquer(&opts.config, &bank, &clip.target, &solver, &executor).expect("dnc");
    report("divide-and-conquer", &dnc);

    let select = overlap_select(&opts.config, &bank, &clip.target, &solver, &executor)
        .expect("overlap-select");
    report("overlap-select [5]", &select);

    let healed = stitch_and_heal(
        &opts.config,
        &bank,
        &clip.target,
        &dnc.mask,
        &solver,
        &executor,
    )
    .expect("heal");
    report("stitch-and-heal [6]", &healed.result);
    // The heal pass creates new edges; charge them too (Fig. 7's point).
    let healed_bits = healed.result.mask.threshold(0.5);
    let new_edges = stitch_loss(&healed_bits, &healed.new_lines, &opts.config.stitch);
    println!(
        "{:<22} {:>7} {:>8} {:>10.1}   (extra loss on the {} NEW edges healing created)",
        "  + new-edge cost",
        "",
        "",
        new_edges.total,
        healed.new_lines.len()
    );

    let ours =
        multigrid_schwarz(&opts.config, &bank, &clip.target, &solver, &executor).expect("ours");
    report("multigrid-Schwarz", &ours);

    let full = full_chip(&opts.config, &bank, &clip.target, &solver).expect("full");
    report("full-chip reference", &full);

    opts.finish_run("related_baselines");
}

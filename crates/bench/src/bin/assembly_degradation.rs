//! Regenerates the **Section 2.3 motivating experiment**: assembling
//! independently optimised tiles degrades L2 relative to inspecting each
//! tile alone (the paper reports increases up to 8247 px^2 for
//! Multi-level-ILT and 4600 px^2 for GLS-ILT, at 16x our default linear
//! scale).
//!
//! For each solver, every tile is inspected twice: once as the solver left
//! it, and once re-cropped from the assembled full-clip mask (margins
//! overwritten by neighbours). The difference is the tile-assembly penalty.
//!
//! ```text
//! cargo run --release -p ilt-bench --bin assembly_degradation
//! ```

use ilt_bench::HarnessOptions;
use ilt_grid::Grid;
use ilt_layout::suite_of_size;
use ilt_litho::Corner;
use ilt_metrics::l2_loss;
use ilt_opt::{LevelSetIlt, PixelIlt, SolveContext, SolveRequest, TileSolver};
use ilt_tile::{assemble, restrict, AssemblyMode, Partition};

fn main() {
    let opts = HarnessOptions::from_env();
    let bank = opts.bank();
    let executor = opts.executor();
    let clip = suite_of_size(&opts.config.generator, 1).remove(0);
    let partition =
        Partition::new(clip.size(), clip.size(), opts.config.partition).expect("partition");
    let target_real = clip.target.to_real();
    let n = opts.config.partition.tile;
    let iterations = opts.config.schedule.baseline_iterations;
    let tile_system = bank.system(n, 1).expect("tile system");

    println!("Section 2.3 reproduction: L2 degradation from tile assembly");
    let solvers: Vec<Box<dyn TileSolver>> =
        vec![Box::new(PixelIlt::new()), Box::new(LevelSetIlt::new())];
    for solver in &solvers {
        let masks = executor
            .run_fallible(partition.tiles().len(), |i| {
                let tile = partition.tile(i);
                let tile_target = restrict(&target_real, tile);
                let ctx = SolveContext {
                    bank: &bank,
                    n,
                    scale: 1,
                };
                solver
                    .solve(
                        &ctx,
                        &SolveRequest::new(&tile_target, &tile_target, iterations),
                    )
                    .map(|o| o.mask)
            })
            .expect("tile solves failed");
        let assembled = assemble(&partition, &masks, AssemblyMode::Restricted).expect("assembly");

        let mut solo_total = 0usize;
        let mut assembled_total = 0usize;
        for (i, solo_mask) in masks.iter().enumerate() {
            let tile = partition.tile(i);
            let tile_target_bits = Grid::from_fn(n, n, |x, y| {
                clip.target
                    .get(tile.rect.x0 as usize + x, tile.rect.y0 as usize + y)
            });
            let solo_print = tile_system
                .print(&solo_mask.threshold(0.5).to_real(), Corner::Nominal)
                .expect("print");
            let cropped = restrict(&assembled, tile);
            let cropped_print = tile_system
                .print(&cropped.threshold(0.5).to_real(), Corner::Nominal)
                .expect("print");
            solo_total += l2_loss(&solo_print, &tile_target_bits);
            assembled_total += l2_loss(&cropped_print, &tile_target_bits);
        }
        let increase = assembled_total as i64 - solo_total as i64;
        println!(
            "{:<16}  per-tile L2 sum: solo {:6}  cropped-from-assembly {:6}  increase {:+} px^2",
            solver.name(),
            solo_total,
            assembled_total,
            increase
        );
    }
    println!("(paper, at 16x linear scale: up to +8247 for Multi-level-ILT, +4600 for GLS-ILT)");

    opts.finish_run("assembly_degradation");
}

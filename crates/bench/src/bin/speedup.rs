//! Regenerates the **Section 4 parallel-speedup experiment**: the paper
//! reports 2.76x on 4 GPUs whose transfers are staged through host memory.
//!
//! This host may have a single core, so the experiment replays the
//! *measured* per-tile runtimes of the multigrid-Schwarz flow through a
//! list-scheduling makespan model with a host-staged communication charge
//! (see `ilt_core::speedup` and DESIGN.md for the substitution argument).
//!
//! ```text
//! cargo run --release -p ilt-bench --bin speedup
//! ```

use ilt_bench::HarnessOptions;
use ilt_core::experiment::Method;
use ilt_core::speedup::{flow_makespan, speedup_curve, CommModel};
use ilt_grid::io::write_csv;
use ilt_layout::suite_of_size;

fn main() {
    let opts = HarnessOptions::from_env();
    let session = opts.session();
    let executor = opts.executor();
    let clip = suite_of_size(&opts.config.generator, 1).remove(0);

    println!("Parallel speedup experiment (schedule model over measured runtimes)");
    let flow = session
        .run_method(Method::Ours, &clip.target, &executor)
        .expect("flow failed");
    println!(
        "measured: {} stages, {:.2}s total tile compute, {:.2}s wall",
        flow.stages.len(),
        flow.total_tile_seconds(),
        flow.wall_seconds
    );
    for s in &flow.stages {
        println!(
            "  {:<16} {:2} tiles, {:6.3}s compute, {:6.4}s assembly",
            s.label,
            s.tile_seconds.len(),
            s.total_tile_seconds(),
            s.assembly_seconds
        );
    }

    // Communication: calibrated from measured assembly plus a host-transfer
    // term proportional to tile payload (conservative: 10% of the mean tile
    // solve per exchange, reflecting PCIe staging without direct links).
    let mean_tile = flow.total_tile_seconds()
        / flow
            .stages
            .iter()
            .map(|s| s.tile_seconds.len())
            .sum::<usize>() as f64;
    let comm = CommModel {
        seconds_per_tile: CommModel::from_measured(&flow).seconds_per_tile + 0.1 * mean_tile,
    };
    println!(
        "communication model: {:.4}s per tile per assembly",
        comm.seconds_per_tile
    );

    let workers = [1usize, 2, 4, 8];
    let curve = speedup_curve(&flow, &workers, comm);
    println!("\nworkers  makespan(s)  speedup");
    let mut rows = Vec::new();
    for p in &curve {
        println!(
            "{:>7}  {:>11.3}  {:>7.2}x",
            p.workers, p.makespan, p.speedup
        );
        rows.push(vec![
            p.workers.to_string(),
            format!("{:.4}", p.makespan),
            format!("{:.3}", p.speedup),
        ]);
    }
    let four = curve
        .iter()
        .find(|p| p.workers == 4)
        .expect("4-worker point");
    println!(
        "\n4-worker speedup: {:.2}x (paper: 2.76x on 4 GPUs without direct links)",
        four.speedup
    );
    println!(
        "ideal-communication bound at 4 workers: {:.2}x",
        flow_makespan(
            &flow,
            1,
            CommModel {
                seconds_per_tile: 0.0
            }
        ) / flow_makespan(
            &flow,
            4,
            CommModel {
                seconds_per_tile: 0.0
            }
        )
    );

    let path = opts.artifact("speedup.csv");
    write_csv(&path, &["workers", "makespan_s", "speedup"], &rows).expect("write CSV");
    println!("wrote {}", path.display());

    opts.finish_run("speedup");
}

//! Regenerates **Fig. 1**: severe mismatch of main features and SRAFs on a
//! tile boundary under traditional divide-and-conquer.
//!
//! Prints the worst stitch-line intersections and dumps PGM images of the
//! full divide-and-conquer mask plus a zoom of the worst crossing.
//!
//! ```text
//! cargo run --release -p ilt-bench --bin fig1_mismatch
//! ```

use ilt_bench::HarnessOptions;
use ilt_core::flows::divide_and_conquer;
use ilt_grid::io::{write_bit_pgm, write_pgm};
use ilt_grid::Rect;
use ilt_layout::suite_of_size;
use ilt_metrics::stitch_loss;
use ilt_opt::PixelIlt;
use ilt_tile::Partition;

fn main() {
    let opts = HarnessOptions::from_env();
    let bank = opts.bank();
    let executor = opts.executor();
    let clip = suite_of_size(&opts.config.generator, 1).remove(0);
    let partition =
        Partition::new(clip.size(), clip.size(), opts.config.partition).expect("partition");

    println!("Fig. 1 reproduction: boundary mismatch under divide-and-conquer");
    let solver = PixelIlt::new();
    let dnc = divide_and_conquer(&opts.config, &bank, &clip.target, &solver, &executor)
        .expect("divide-and-conquer failed");
    let binary = dnc.mask.threshold(0.5);
    let report = stitch_loss(&binary, &partition.stitch_lines(), &opts.config.stitch);

    let mut worst = report.intersections.clone();
    worst.sort_by(|a, b| b.loss.partial_cmp(&a.loss).expect("finite"));
    println!(
        "{} crossings on {} stitch lines, total stitch loss {:.1}",
        report.intersections.len(),
        partition.stitch_lines().len(),
        report.total
    );
    for i in worst.iter().take(5) {
        println!("  crossing at ({:4}, {:4}): loss {:8.2}", i.x, i.y, i.loss);
    }

    write_pgm(opts.artifact("fig1_dnc_mask.pgm"), &dnc.mask).expect("write mask");
    write_bit_pgm(opts.artifact("fig1_dnc_mask_binary.pgm"), &binary).expect("write binary");
    if let Some(w) = worst.first() {
        let zoom_rect = Rect::new(
            w.x as i64 - 32,
            w.y as i64 - 32,
            w.x as i64 + 32,
            w.y as i64 + 32,
        )
        .intersect(dnc.mask.bounds())
        .expect("zoom window inside clip");
        let zoom = dnc.mask.crop(zoom_rect);
        write_pgm(opts.artifact("fig1_worst_crossing.pgm"), &zoom).expect("write zoom");
        println!(
            "wrote {} (zoom of the worst crossing)",
            opts.artifact("fig1_worst_crossing.pgm").display()
        );
    }

    opts.finish_run("fig1_mismatch");
}

//! Extension study: why the paper runs ILT on M1 but recommends template
//! extraction for via layers (Section 4, first paragraph).
//!
//! Measures pattern diversity — the fraction of features covered by
//! repeating an already-seen raster pattern — for the M1 suite versus
//! synthetic via clips. High coverage means a pattern library amortises;
//! low coverage means every feature needs its own optimisation, i.e. ILT.
//!
//! ```text
//! cargo run --release -p ilt-bench --bin via_templates
//! ```

use ilt_bench::HarnessOptions;
use ilt_layout::{generate_via_clip, pattern_diversity, suite_of_size, ViaConfig};

fn main() {
    let opts = HarnessOptions::from_env();
    println!(
        "pattern-diversity analysis ({} clips per layer):",
        opts.cases.min(5)
    );

    let mut m1_cov = Vec::new();
    for clip in suite_of_size(&opts.config.generator, opts.cases.min(5)) {
        let d = pattern_diversity(&clip.target);
        println!(
            "  M1  {:<7} {:4} features, {:4} distinct patterns, coverage {:5.1}%",
            clip.name,
            d.features,
            d.distinct_patterns,
            100.0 * d.template_coverage()
        );
        m1_cov.push(d.template_coverage());
    }

    let via_cfg = ViaConfig::with_size(opts.config.clip);
    let mut via_cov = Vec::new();
    for seed in 1..=opts.cases.min(5) as u64 {
        let clip = generate_via_clip(&via_cfg, seed);
        let d = pattern_diversity(&clip);
        println!(
            "  via case{seed:<3} {:4} features, {:4} distinct patterns, coverage {:5.1}%",
            d.features,
            d.distinct_patterns,
            100.0 * d.template_coverage()
        );
        via_cov.push(d.template_coverage());
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nmean template coverage: via {:.1}% vs M1 {:.1}% — template libraries \
         amortise on via layers; dense metal needs per-shape ILT (the paper's \
         rationale for evaluating on M1 only)",
        100.0 * mean(&via_cov),
        100.0 * mean(&m1_cov)
    );

    opts.finish_run("via_templates");
}

//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. weighted-smoothing band (Eq. 13) vs hard RAS restriction;
//! 2. coarse-grid initialisation (s = 2) vs fine-only Schwarz stages;
//! 3. number of fine-grid Schwarz stages at a fixed iteration budget;
//! 4. refine pass on/off;
//! 5. SOCS kernel-count truncation vs simulation error.
//!
//! ```text
//! cargo run --release -p ilt-bench --bin ablations
//! ```

use ilt_bench::HarnessOptions;
use ilt_core::experiment::inspect_detailed;
use ilt_core::flows::multigrid_schwarz;
use ilt_grid::Grid;
use ilt_layout::suite_of_size;
use ilt_litho::{Corner, KernelSet, LithoSimulator};
use ilt_opt::PixelIlt;
use ilt_tile::Partition;

fn main() {
    let opts = HarnessOptions::from_env();
    // The bank and inspection system are shared across every ablation
    // point below — only the schedule/geometry knobs vary.
    let session = opts.session();
    let executor = opts.executor();
    let clip = suite_of_size(&opts.config.generator, 1).remove(0);
    let partition =
        Partition::new(clip.size(), clip.size(), opts.config.partition).expect("partition");
    let lines = partition.stitch_lines();
    let solver = PixelIlt::new();

    let run = |label: &str, config: &ilt_core::ExperimentConfig| {
        let flow = multigrid_schwarz(config, session.bank(), &clip.target, &solver, &executor)
            .expect("flow");
        let (q, r) = inspect_detailed(
            config,
            session.inspection(),
            &lines,
            &clip.target,
            &flow.mask,
        )
        .expect("inspect");
        println!(
            "{label:<34} L2 {:6}  PVB {:6}  stitch {:8.1}  TAT {:6.2}s",
            q.l2, q.pvband, r.total, flow.wall_seconds
        );
    };

    println!("== ablation 1: blend band D (0 = default overlap/4) ==");
    for band in [2usize, 8, 0, 32] {
        let mut cfg = opts.config.clone();
        cfg.blend_band = band;
        run(&format!("band D = {band}"), &cfg);
    }

    println!("== ablation 2: coarse-grid initialisation ==");
    for s_max in [1usize, 2] {
        let mut cfg = opts.config.clone();
        cfg.s_max = s_max;
        run(&format!("s_max = {s_max}"), &cfg);
    }

    println!("== ablation 3: fine-stage count at a fixed 40-iteration budget ==");
    for stages in [1usize, 2, 4] {
        let mut cfg = opts.config.clone();
        cfg.schedule.fine_stages = stages;
        run(&format!("{stages} stage(s)"), &cfg);
    }

    println!("== ablation 4: refine pass ==");
    for refine in [0usize, 4, 8] {
        let mut cfg = opts.config.clone();
        cfg.schedule.refine_iterations = refine;
        run(&format!("refine {refine} iterations"), &cfg);
    }

    println!("== ablation 5: SOCS kernel truncation vs simulation error ==");
    let mut full_optics = opts.config.optics;
    full_optics.kernel_count = 1000;
    let reference_set = KernelSet::build(&full_optics, false).expect("kernels");
    let n = opts.config.optics.base_n;
    let mask = suite_of_size(&opts.config.generator, 1).remove(0).target;
    let mask = Grid::from_fn(n, n, |x, y| if mask.get(x, y) != 0 { 1.0 } else { 0.0 });
    let reference_sim = LithoSimulator::new(n, reference_set.clone()).expect("sim");
    let reference = reference_sim.aerial_image(&mask).expect("sim");
    println!("reference: all {} kernels", reference_set.len());
    for k in [1usize, 2, 4, 6, 8, 12] {
        if k > reference_set.len() {
            break;
        }
        let sim = LithoSimulator::new(n, reference_set.truncate(k)).expect("sim");
        let aerial = sim.aerial_image(&mask).expect("sim");
        let mut worst: f64 = 0.0;
        let mut total = 0.0;
        for (a, b) in aerial.as_slice().iter().zip(reference.as_slice()) {
            let d = (a - b).abs();
            worst = worst.max(d);
            total += d;
        }
        println!(
            "  {k:2} kernels: max |dI| {:.4}, mean |dI| {:.5}",
            worst,
            total / aerial.len() as f64
        );
    }
    // Print-through effect of truncation at the resist.
    let resist = session.bank().resist();
    let reference_print = resist.print(&reference);
    for k in [2usize, 4, 6] {
        let sim = LithoSimulator::new(n, reference_set.truncate(k)).expect("sim");
        let aerial = sim.aerial_image(&mask).expect("sim");
        let print = resist.print(&aerial);
        println!(
            "  {k:2} kernels: printed-pixel deviation {} px (corner {:?})",
            print.xor_count(&reference_print),
            Corner::Nominal
        );
    }

    opts.finish_run("ablations");
}

//! Regenerates **Fig. 6**: weighted smoothing (Eq. (12)–(14)) versus hard
//! RAS assembly of the same fine-grid tiles, before and after binarisation.
//!
//! ```text
//! cargo run --release -p ilt-bench --bin fig6_smoothing
//! ```

use ilt_bench::HarnessOptions;
use ilt_grid::io::{write_bit_pgm, write_pgm};
use ilt_layout::suite_of_size;
use ilt_metrics::{stitch_loss, ContinuityComparison};
use ilt_opt::{PixelIlt, SolveContext, SolveRequest, TileSolver};
use ilt_tile::{assemble, restrict, AssemblyMode, Partition, TileExecutor};

fn main() {
    let opts = HarnessOptions::from_env();
    let bank = opts.bank();
    let executor: TileExecutor = opts.executor();
    let clip = suite_of_size(&opts.config.generator, 1).remove(0);
    let partition =
        Partition::new(clip.size(), clip.size(), opts.config.partition).expect("partition");
    let target_real = clip.target.to_real();
    let iterations = opts.config.schedule.baseline_iterations / 2;
    let solver = PixelIlt::new();

    println!("Fig. 6 reproduction: assembling identical tiles two ways");
    // Solve every tile once, independently (so the overlaps genuinely
    // disagree), then assemble the same tile set both ways.
    let masks = executor
        .run_fallible(partition.tiles().len(), |i| {
            let tile = partition.tile(i);
            let tile_target = restrict(&target_real, tile);
            let ctx = SolveContext {
                bank: &bank,
                n: opts.config.partition.tile,
                scale: 1,
            };
            solver
                .solve(
                    &ctx,
                    &SolveRequest::new(&tile_target, &tile_target, iterations),
                )
                .map(|o| o.mask)
        })
        .expect("tile solves failed");

    let hard = assemble(&partition, &masks, AssemblyMode::Restricted).expect("assembly");
    let soft = assemble(
        &partition,
        &masks,
        AssemblyMode::weighted_default(&partition),
    )
    .expect("assembly");
    let lines = partition.stitch_lines();
    let hard_report = stitch_loss(&hard.threshold(0.5), &lines, &opts.config.stitch);
    let soft_report = stitch_loss(&soft.threshold(0.5), &lines, &opts.config.stitch);
    let comparison = ContinuityComparison {
        restricted: hard_report.total,
        weighted: soft_report.total,
    };
    println!(
        "stitch loss, hard RAS assembly (Eq. 6):      {:.2}",
        comparison.restricted
    );
    println!(
        "stitch loss, weighted assembly (Eq. 12-14):  {:.2}",
        comparison.weighted
    );
    println!("continuity improvement: {:.2}x", comparison.improvement());

    // The four panels of Fig. 6: gray + binarised masks for both modes.
    write_pgm(opts.artifact("fig6_hard_gray.pgm"), &hard).expect("write");
    write_bit_pgm(opts.artifact("fig6_hard_binary.pgm"), &hard.threshold(0.5)).expect("write");
    write_pgm(opts.artifact("fig6_weighted_gray.pgm"), &soft).expect("write");
    write_bit_pgm(
        opts.artifact("fig6_weighted_binary.pgm"),
        &soft.threshold(0.5),
    )
    .expect("write");
    println!(
        "wrote fig6_{{hard,weighted}}_{{gray,binary}}.pgm in {}",
        opts.out_dir.display()
    );

    opts.finish_run("fig6_smoothing");
}

//! Regenerates **Fig. 3**: the Stitch-Loss definition illustrated — the
//! smoothing-difference "orange area" per window, on a mask with real
//! stitching errors.
//!
//! ```text
//! cargo run --release -p ilt-bench --bin fig3_stitch_loss
//! ```

use ilt_bench::HarnessOptions;
use ilt_core::flows::divide_and_conquer;
use ilt_grid::io::write_pgm;
use ilt_grid::GaussianFilter;
use ilt_layout::suite_of_size;
use ilt_metrics::stitch_loss;
use ilt_opt::PixelIlt;
use ilt_tile::Partition;

fn main() {
    let opts = HarnessOptions::from_env();
    let bank = opts.bank();
    let executor = opts.executor();
    let clip = suite_of_size(&opts.config.generator, 2).remove(1);
    let partition =
        Partition::new(clip.size(), clip.size(), opts.config.partition).expect("partition");

    println!(
        "Fig. 3 reproduction: Definition 1 on a divide-and-conquer mask \
         (window {}, sigma {}, {} smoothing iterations)",
        opts.config.stitch.window, opts.config.stitch.sigma, opts.config.stitch.iterations
    );
    let dnc = divide_and_conquer(
        &opts.config,
        &bank,
        &clip.target,
        &PixelIlt::new(),
        &executor,
    )
    .expect("divide-and-conquer failed");
    let binary = dnc.mask.threshold(0.5);
    let report = stitch_loss(&binary, &partition.stitch_lines(), &opts.config.stitch);

    println!(
        "per-intersection breakdown ({} crossings):",
        report.intersections.len()
    );
    for i in &report.intersections {
        println!(
            "  ({:4},{:4})  window {}  loss {:8.2}",
            i.x, i.y, i.window, i.loss
        );
    }
    println!("total stitch loss: {:.2}", report.total);

    // The 'orange area' image: |before - after| of the smoothing, which the
    // metric integrates inside each window.
    let filter = GaussianFilter::new(opts.config.stitch.sigma);
    let real = binary.to_real();
    let smoothed = filter.apply_iterated(&real, opts.config.stitch.iterations);
    let diff = ilt_grid::RealGrid::from_fn(real.width(), real.height(), |x, y| {
        (real.get(x, y) - smoothed.get(x, y)).abs()
    });
    write_pgm(opts.artifact("fig3_smoothing_difference.pgm"), &diff).expect("write diff");
    println!(
        "wrote {} (the integrand of Definition 1)",
        opts.artifact("fig3_smoothing_difference.pgm").display()
    );

    opts.finish_run("fig3_stitch_loss");
}

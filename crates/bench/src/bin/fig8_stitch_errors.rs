//! Regenerates **Fig. 8**: locations where the per-crossing stitch error
//! exceeds the threshold (the paper uses 20), comparing the traditional
//! divide-and-conquer flow with the multigrid-Schwarz flow.
//!
//! ```text
//! cargo run --release -p ilt-bench --bin fig8_stitch_errors
//! ```

use ilt_bench::HarnessOptions;
use ilt_core::flows::{divide_and_conquer, multigrid_schwarz};
use ilt_grid::io::write_bit_pgm;
use ilt_layout::suite_of_size;
use ilt_metrics::{stitch_loss, StitchReport};
use ilt_opt::PixelIlt;
use ilt_tile::Partition;

/// The paper flags crossings with stitch error above 20.
const ERROR_THRESHOLD: f64 = 20.0;

fn describe(name: &str, report: &StitchReport) {
    let errors = report.errors_above(ERROR_THRESHOLD);
    println!(
        "{name}: {} crossings, {} with error > {ERROR_THRESHOLD}, total loss {:.2}",
        report.intersections.len(),
        errors.len(),
        report.total
    );
    for e in &errors {
        println!("    error at ({:4}, {:4}): {:8.2}", e.x, e.y, e.loss);
    }
}

fn main() {
    let opts = HarnessOptions::from_env();
    let bank = opts.bank();
    let executor = opts.executor();
    let clip = suite_of_size(&opts.config.generator, 1).remove(0);
    let partition =
        Partition::new(clip.size(), clip.size(), opts.config.partition).expect("partition");
    let lines = partition.stitch_lines();
    let solver = PixelIlt::new();

    println!("Fig. 8 reproduction: stitch-error locations, traditional vs ours");
    let dnc = divide_and_conquer(&opts.config, &bank, &clip.target, &solver, &executor)
        .expect("divide-and-conquer failed");
    let ours = multigrid_schwarz(&opts.config, &bank, &clip.target, &solver, &executor)
        .expect("multigrid-schwarz failed");

    let dnc_bits = dnc.mask.threshold(0.5);
    let ours_bits = ours.mask.threshold(0.5);
    let dnc_report = stitch_loss(&dnc_bits, &lines, &opts.config.stitch);
    let ours_report = stitch_loss(&ours_bits, &lines, &opts.config.stitch);
    describe("traditional divide-and-conquer", &dnc_report);
    describe("multigrid-Schwarz (ours)", &ours_report);

    let dnc_errors = dnc_report.errors_above(ERROR_THRESHOLD).len();
    let ours_errors = ours_report.errors_above(ERROR_THRESHOLD).len();
    println!(
        "flagged crossings: {} -> {} ({})",
        dnc_errors,
        ours_errors,
        if ours_errors <= dnc_errors {
            "improved, matching Fig. 8"
        } else {
            "NOT improved — investigate"
        }
    );

    write_bit_pgm(opts.artifact("fig8_traditional.pgm"), &dnc_bits).expect("write");
    write_bit_pgm(opts.artifact("fig8_ours.pgm"), &ours_bits).expect("write");
    println!(
        "wrote fig8_{{traditional,ours}}.pgm in {}",
        opts.out_dir.display()
    );

    opts.finish_run("fig8_stitch_errors");
}

//! Closed-loop load generator for the `ilt-serve` job service.
//!
//! Runs `ILT_LOAD_CONNS` client connections (default 2) that together
//! submit `ILT_LOAD_JOBS` jobs (default 8) and poll each to completion,
//! then reports end-to-end latency percentiles, throughput, the
//! queue-rejection rate, and the kernel-cache hit ratio. Client-side
//! histograms split each job's end-to-end latency into queue wait
//! (`serve.load.queue_wait_us`, from the done body's `queue_seconds`)
//! and service time (`serve.load.service_us`), alongside the combined
//! `serve.load.latency_us`, and everything lands in the usual
//! `ilt-report/v2` `report.json` so `report_diff` can gate runs against
//! `results/baselines/serve_smoke.json`.
//!
//! By default the target server is started **in-process** (so a smoke run
//! needs exactly one command and the report also carries the server-side
//! telemetry). Set `ILT_SERVE_TARGET=host:port` to drive an external
//! server instead.
//!
//! ```text
//! ILT_SCALE=tiny cargo run --release -p ilt-bench --bin serve_load
//! ```
//!
//! Extra knobs: `ILT_LOAD_CONNS`, `ILT_LOAD_JOBS`, and the `ILT_SERVE_*`
//! variables of the in-process server. Exits non-zero if any job is lost —
//! rejected past the retry budget, failed server-side, or never reaching
//! `done`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ilt_bench::HarnessOptions;
use ilt_json::Json;
use ilt_serve::{ServeConfig, ServerHandle};

/// Per-job attempts before a rejected job counts as lost.
const MAX_SUBMIT_ATTEMPTS: u32 = 20;
/// Poll cadence while a job is queued or running.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// Give up polling one job after this long.
const POLL_BUDGET: Duration = Duration::from_secs(300);

fn main() {
    // A load test without telemetry would have nothing to report: enable
    // collection unless the environment explicitly said otherwise.
    let opts = HarnessOptions::from_env();
    if !ilt_telemetry::enabled() && std::env::var("ILT_TRACE").is_err() {
        ilt_telemetry::set_enabled(true);
    }
    let conns = env_usize("ILT_LOAD_CONNS", 2).max(1);
    let jobs = env_usize("ILT_LOAD_JOBS", 8).max(1);

    let (target, server) = match std::env::var("ILT_SERVE_TARGET") {
        Ok(addr) => (addr, None),
        Err(_) => {
            let mut config = ServeConfig::from_env();
            config.addr = "127.0.0.1:0".to_string(); // never fight over a port
            let handle = ilt_serve::start(config).expect("cannot start in-process server");
            (handle.addr().to_string(), Some(handle))
        }
    };
    println!(
        "serve_load: {conns} connection(s) x {jobs} job(s) against {target} ({})",
        if server.is_some() {
            "in-process"
        } else {
            "external"
        }
    );

    let started = Instant::now();
    let stats = run_load(&target, conns, jobs, &opts.scale);
    let wall = started.elapsed().as_secs_f64();

    // Scrape the cache counters over HTTP so the numbers are honest for
    // external targets too (in-process they come from the same sink).
    let metrics = http_request(&target, "GET", "/metrics", None)
        .map(|r| r.body)
        .unwrap_or_default();
    let bank_hits = scrape_counter(&metrics, "ilt_litho_bank_cache_hit_total");
    let bank_misses = scrape_counter(&metrics, "ilt_litho_bank_cache_miss_total");

    if let Some(handle) = server {
        let summary = drain(handle);
        println!(
            "server drained: {} completed, {} failed, {} unfinished",
            summary.completed, summary.failed, summary.unfinished
        );
    }

    let mut latencies = stats.latencies_s.clone();
    latencies.sort_by(f64::total_cmp);
    println!(
        "latency p50 {:.3}s  p95 {:.3}s  p99 {:.3}s  (n = {})",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
        latencies.len()
    );
    println!(
        "throughput {:.2} jobs/s over {wall:.2}s; {} rejected ({:.1}% of submissions), {} lost",
        stats.completed as f64 / wall.max(1e-9),
        stats.rejected,
        100.0 * stats.rejected as f64 / (stats.completed + stats.rejected).max(1) as f64,
        stats.lost
    );
    let lookups = bank_hits + bank_misses;
    if lookups > 0 {
        println!(
            "kernel bank cache: {bank_hits} hit(s) / {bank_misses} miss(es) — {:.1}% hit ratio",
            100.0 * bank_hits as f64 / lookups as f64
        );
    } else {
        println!("kernel bank cache: no lookups observed (is server telemetry off?)");
    }

    opts.finish_run("serve_load");
    if stats.lost > 0 {
        eprintln!("serve_load: {} job(s) lost", stats.lost);
        std::process::exit(1);
    }
}

/// Drains an in-process server, flushing this thread's telemetry first so
/// the report sees both sides.
fn drain(handle: ServerHandle) -> ilt_serve::DrainSummary {
    ilt_telemetry::flush_thread();
    handle.shutdown()
}

#[derive(Default)]
struct LoadStats {
    completed: u64,
    rejected: u64,
    lost: u64,
    latencies_s: Vec<f64>,
}

impl LoadStats {
    fn merge(&mut self, other: LoadStats) {
        self.completed += other.completed;
        self.rejected += other.rejected;
        self.lost += other.lost;
        self.latencies_s.extend(other.latencies_s);
    }
}

/// Runs the closed loop: each connection thread submits its share of the
/// jobs sequentially, polling every job to completion before the next.
fn run_load(target: &str, conns: usize, jobs: usize, scale: &str) -> LoadStats {
    let mut total = LoadStats::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                // Round-robin split of the job ids across connections.
                let my_jobs: Vec<usize> = (0..jobs).filter(|j| j % conns == c).collect();
                scope.spawn(move || {
                    let mut stats = LoadStats::default();
                    for j in my_jobs {
                        run_one_job(target, j, scale, &mut stats);
                    }
                    ilt_telemetry::flush_thread();
                    stats
                })
            })
            .collect();
        for handle in handles {
            total.merge(handle.join().expect("load thread panicked"));
        }
    });
    total
}

fn run_one_job(target: &str, index: usize, scale: &str, stats: &mut LoadStats) {
    // Cycle through the benchmark suite so the cases vary but stay valid.
    let case = (index % 20) + 1;
    let spec = format!("{{\"case\":{case},\"method\":\"ours\",\"scale\":\"{scale}\"}}");
    let started = Instant::now();
    let mut id = None;
    for _attempt in 0..MAX_SUBMIT_ATTEMPTS {
        match http_request(target, "POST", "/v1/jobs", Some(&spec)) {
            Ok(response) if response.status == 202 => {
                id = Json::parse(&response.body)
                    .ok()
                    .and_then(|j| j.get("id").and_then(|v| v.as_str().map(String::from)));
                break;
            }
            Ok(response) if response.status == 429 => {
                stats.rejected += 1;
                ilt_telemetry::counter_add("serve.load.rejected", 1);
                let retry_s = response
                    .header("retry-after")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(1);
                std::thread::sleep(Duration::from_secs(retry_s.min(5)));
            }
            Ok(response) => {
                eprintln!("job {index}: unexpected status {}", response.status);
                std::thread::sleep(Duration::from_millis(200));
            }
            Err(e) => {
                eprintln!("job {index}: submit failed: {e}");
                std::thread::sleep(Duration::from_millis(200));
            }
        }
    }
    let Some(id) = id else {
        stats.lost += 1;
        ilt_telemetry::counter_add("serve.load.lost", 1);
        return;
    };
    let path = format!("/v1/jobs/{id}");
    let poll_started = Instant::now();
    loop {
        if poll_started.elapsed() > POLL_BUDGET {
            eprintln!("job {index} (id {id}): poll budget exhausted");
            stats.lost += 1;
            ilt_telemetry::counter_add("serve.load.lost", 1);
            return;
        }
        let last_body = http_request(target, "GET", &path, None)
            .ok()
            .filter(|r| r.status == 200)
            .and_then(|r| Json::parse(&r.body).ok());
        let status = last_body
            .as_ref()
            .and_then(|j| j.get("status").and_then(|s| s.as_str().map(String::from)));
        match status.as_deref() {
            Some("done") => {
                let latency = started.elapsed().as_secs_f64();
                stats.completed += 1;
                stats.latencies_s.push(latency);
                ilt_telemetry::counter_add("serve.load.jobs_ok", 1);
                ilt_telemetry::record_value("serve.load.latency_us", (latency * 1e6) as u64);
                // Split the wait from the work: the done body reports how
                // long the job sat queued, so queue wait and service time
                // land in separate histograms and a saturated queue is
                // distinguishable from a slow solver.
                let queue_s = last_body
                    .as_ref()
                    .and_then(|j| j.path(&["queue_seconds"]).and_then(|v| v.as_f64()))
                    .unwrap_or(0.0);
                ilt_telemetry::record_value("serve.load.queue_wait_us", (queue_s * 1e6) as u64);
                ilt_telemetry::record_value(
                    "serve.load.service_us",
                    ((latency - queue_s).max(0.0) * 1e6) as u64,
                );
                return;
            }
            Some("failed") => {
                eprintln!("job {index} (id {id}): failed server-side");
                stats.lost += 1;
                ilt_telemetry::counter_add("serve.load.lost", 1);
                return;
            }
            _ => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Interpolation-free percentile over an already-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Pulls one counter value out of a Prometheus text exposition.
fn scrape_counter(exposition: &str, metric: &str) -> u64 {
    exposition
        .lines()
        .filter(|line| !line.starts_with('#'))
        .find_map(|line| {
            let (name, value) = line.split_once(' ')?;
            (name == metric).then(|| value.trim().parse().ok())?
        })
        .unwrap_or(0)
}

struct HttpResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl HttpResponse {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One HTTP/1.1 request over a fresh connection (closed-loop clients spend
/// their time waiting on solves, so connection reuse buys nothing here).
fn http_request(
    target: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<HttpResponse, String> {
    let stream = TcpStream::connect(target).map_err(|e| format!("connect {target}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let body = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {target}\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status: {e}"))?;
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read header: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().unwrap_or(0);
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    Ok(HttpResponse {
        status,
        headers,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

fn env_usize(var: &str, fallback: usize) -> usize {
    match std::env::var(var) {
        Err(_) => fallback,
        Ok(raw) => match raw.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("warning: invalid {var}={raw:?}; using default {fallback}");
                fallback
            }
        },
    }
}

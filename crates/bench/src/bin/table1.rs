//! Regenerates **Table 1**: 20 clips x {GLS-ILT, Multi-level-ILT,
//! Full-chip ILT, Ours} x {L2, PVBand, Stitch loss, TAT}, including the
//! `Average` and `Ratio` rows.
//!
//! ```text
//! cargo run --release -p ilt-bench --bin table1
//! ```

use ilt_bench::{row, HarnessOptions};
use ilt_core::experiment::{averages, ratios, Method};
use ilt_grid::io::write_csv;
use ilt_layout::suite_of_size;

fn main() {
    let opts = HarnessOptions::from_env();
    // One session for the whole table: the kernel bank and the full-clip
    // inspection system are built once, not per case.
    let session = opts.session();
    let executor = opts.executor();
    let suite = suite_of_size(&opts.config.generator, opts.cases);

    println!(
        "Table 1 reproduction: {} clips of {}x{}, tile {} overlap {}, {} kernels",
        suite.len(),
        opts.config.clip,
        opts.config.clip,
        opts.config.partition.tile,
        opts.config.partition.overlap,
        opts.config.optics.kernel_count,
    );
    let methods: Vec<&str> = Method::all().iter().map(|m| m.label()).collect();
    let mut header = vec!["case".to_string(), "area".to_string()];
    for m in &methods {
        for col in ["L2", "PVB", "stitch", "TAT(s)"] {
            header.push(format!("{m}:{col}"));
        }
    }
    let widths: Vec<usize> = header.iter().map(|h| h.len().max(9)).collect();
    println!("{}", row(&header, &widths));

    let mut cases = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for clip in &suite {
        let result = session
            .run_case(clip, &executor)
            .unwrap_or_else(|e| panic!("{} failed: {e}", clip.name));
        let mut cells = vec![result.name.clone(), result.area.to_string()];
        for m in &result.methods {
            cells.push(m.metrics.l2.to_string());
            cells.push(m.metrics.pvband.to_string());
            cells.push(format!("{:.1}", m.metrics.stitch));
            cells.push(format!("{:.2}", m.metrics.tat));
        }
        println!("{}", row(&cells, &widths));
        csv_rows.push(cells);
        cases.push(result);
    }

    let avgs = averages(&cases);
    let mut cells = vec!["Average".to_string(), String::new()];
    for a in &avgs {
        cells.push(format!("{:.1}", a.l2));
        cells.push(format!("{:.1}", a.pvband));
        cells.push(format!("{:.1}", a.stitch));
        cells.push(format!("{:.3}", a.tat));
    }
    println!("{}", row(&cells, &widths));
    csv_rows.push(cells);

    let rats = ratios(&avgs, "Ours");
    let mut cells = vec!["Ratio".to_string(), String::new()];
    for r in &rats {
        cells.push(format!("{:.4}", r.l2));
        cells.push(format!("{:.4}", r.pvband));
        cells.push(format!("{:.4}", r.stitch));
        cells.push(format!("{:.4}", r.tat));
    }
    println!("{}", row(&cells, &widths));
    csv_rows.push(cells);

    // Headline claims of the paper, checked against this run.
    let get = |name: &str| avgs.iter().find(|a| a.method == name).expect("method");
    let ml = get("Multi-level-ILT");
    let ours = get("Ours");
    let full = get("Full-chip ILT");
    println!();
    println!(
        "stitch-loss improvement over Multi-level-ILT D&C: {:.2}x (paper: >3.15x)",
        ml.stitch / ours.stitch
    );
    println!(
        "L2 vs full-chip: {:.4} (paper: 1.0004); TAT vs full-chip: {:.3} (paper: 0.958x ours)",
        full.l2 / ours.l2,
        ours.tat / full.tat
    );

    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let path = opts.artifact("table1.csv");
    write_csv(&path, &header_refs, &csv_rows).expect("failed to write CSV");
    println!("wrote {}", path.display());

    opts.finish_run("table1");
}

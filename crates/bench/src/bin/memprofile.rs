//! `memprofile`: the memory-and-CPU trajectory of the multigrid-Schwarz
//! flow across growing tile grids.
//!
//! Runs `Method::Ours` on a 1×1 clip (one tile, no coarse grid) and the
//! paper-ratio 3×3 clip, with the full `ilt-prof` layer on: the tracking
//! global allocator attributes every byte to the pipeline stage that
//! allocated it, the sampling CPU profiler attributes ticks to span
//! paths, and the RSS window records the per-grid high-water mark. This
//! is the baseline trajectory the streaming-assembly work (ROADMAP item
//! 1: bounded peak memory at paper scale) will be gated against.
//!
//! Artifacts, all in `ILT_OUT` (default `results/`):
//!
//! * `BENCH_memory.json` — schema `ilt-bench-trajectory/v1`; one point
//!   per tile grid with peak RSS, allocated bytes, bytes/iteration,
//!   per-stage byte/call/sample attribution, and the fraction of tracked
//!   bytes attributed to a named stage (expected ≥ 0.9);
//! * `memprofile_flame.txt` — collapsed-stack (flamegraph-ready) text of
//!   the whole run, one `span;path count` line per distinct stack;
//! * `report.json` — the usual `ilt-report/v2`, here carrying the
//!   optional `profile` and `memory` sections (the latter seeds the
//!   `report_diff --max-rss-ratio` gate via
//!   `results/baselines/memprofile.json`).
//!
//! ```text
//! ILT_SCALE=tiny cargo run --release -p ilt-bench --bin memprofile
//! ```

use std::fmt::Write as _;

use ilt_bench::HarnessOptions;
use ilt_core::experiment::Method;
use ilt_core::Session;
use ilt_layout::suite_of_size;
use ilt_prof::Stage;
use ilt_telemetry as tele;

// Attribution needs the tracking allocator to BE the global allocator;
// `main` then switches the counting on.
#[global_allocator]
static GLOBAL: ilt_prof::TrackingAlloc = ilt_prof::TrackingAlloc::new();

/// Per-stage attribution deltas of one grid run.
struct StageDelta {
    stage: Stage,
    bytes: u64,
    calls: u64,
    samples: u64,
}

/// One trajectory point: the full flow on one tile-grid geometry.
struct GridPoint {
    grid: String,
    tiles: usize,
    clip: usize,
    wall_seconds: f64,
    iterations: usize,
    window_peak_rss_bytes: u64,
    peak_rss_bytes: u64,
    allocated_bytes: u64,
    allocation_calls: u64,
    bytes_per_iteration: f64,
    peak_live_bytes: i64,
    stage_attribution_fraction: f64,
    stages: Vec<StageDelta>,
}

fn main() {
    let opts = HarnessOptions::from_env();
    tele::set_enabled(true);
    // This binary exists to profile: allocation counting is always on and
    // the sampler defaults to DEFAULT_HZ (ILT_PROF_HZ=0 still disables).
    ilt_prof::alloc::set_enabled(true);
    ilt_prof::init_from_env(true);
    let base_n = opts.config.optics.base_n;
    println!(
        "memprofile: scale={} base_n={} sampler={} alloc=on",
        opts.scale,
        base_n,
        if ilt_prof::sampler_running() {
            format!("{:.0} Hz", ilt_prof::sampler_hz())
        } else {
            "off".to_string()
        }
    );

    let executor = opts.executor();
    let mut points = Vec::new();
    // Clip factors 1 and 2 over the fixed tile/overlap geometry give the
    // 1×1 and paper-ratio 3×3 tile grids (stride is half a tile, so the
    // next admissible clip after 1×1 is already 3×3).
    for factor in [1usize, 2] {
        let mut config = opts.config.clone();
        config.clip = factor * base_n;
        config.s_max = config.s_max.min(factor);
        config.generator.size = config.clip;
        config.validate();
        let sched = &config.schedule;
        let iterations = if config.s_max > 1 {
            sched.coarse_iterations
        } else {
            0
        } + sched.fine_iterations
            + sched.refine_iterations;
        let clip = suite_of_size(&config.generator, 1).remove(0);

        // Snapshot all three profilers, run, then diff.
        let before = ilt_prof::alloc::stats();
        let samples_before = ilt_prof::cpu::samples_per_stage();
        ilt_prof::alloc::reset_peak();
        ilt_prof::rss::reset_window();
        let session = Session::new(config.clone()).expect("session setup failed");
        let flow = session
            .run_method(Method::Ours, &clip.target, &executor)
            .expect("flow failed");
        ilt_prof::rss::note_window_sample();
        let after = ilt_prof::alloc::stats();
        let samples_after = ilt_prof::cpu::samples_per_stage();
        drop(session);

        let allocated = after.allocated_bytes - before.allocated_bytes;
        let calls = after.allocation_calls - before.allocation_calls;
        let stages: Vec<StageDelta> = Stage::ALL
            .iter()
            .map(|&stage| {
                let b = &before.stages[stage as usize];
                let a = &after.stages[stage as usize];
                let name = stage.name();
                let s0 = samples_before.get(name).copied().unwrap_or(0);
                let s1 = samples_after.get(name).copied().unwrap_or(0);
                StageDelta {
                    stage,
                    bytes: a.bytes - b.bytes,
                    calls: a.calls - b.calls,
                    samples: s1 - s0,
                }
            })
            .collect();
        let tracked: u64 = stages.iter().map(|s| s.bytes).sum();
        let tagged: u64 = stages
            .iter()
            .filter(|s| s.stage != Stage::Untagged)
            .map(|s| s.bytes)
            .sum();
        let attribution = if tracked == 0 {
            0.0
        } else {
            tagged as f64 / tracked as f64
        };

        let partition = ilt_tile::Partition::new(config.clip, config.clip, config.partition)
            .expect("partition");
        let (nx, ny) = (partition.tiles_x(), partition.tiles_y());
        let point = GridPoint {
            grid: format!("{nx}x{ny}"),
            tiles: nx * ny,
            clip: config.clip,
            wall_seconds: flow.wall_seconds,
            iterations,
            window_peak_rss_bytes: ilt_prof::rss::window_peak(),
            peak_rss_bytes: ilt_prof::rss::read().map_or(0, |s| s.peak_bytes),
            allocated_bytes: allocated,
            allocation_calls: calls,
            bytes_per_iteration: allocated as f64 / iterations.max(1) as f64,
            peak_live_bytes: after.peak_live_bytes,
            stage_attribution_fraction: attribution,
            stages,
        };
        println!(
            "grid {:>3} ({} tiles, clip {:>4}): {:>7.2} MiB allocated, \
             {:>6.2} MiB window-peak RSS, {:>5.1}% stage-attributed, {:.2}s",
            point.grid,
            point.tiles,
            point.clip,
            point.allocated_bytes as f64 / (1 << 20) as f64,
            point.window_peak_rss_bytes as f64 / (1 << 20) as f64,
            point.stage_attribution_fraction * 100.0,
            point.wall_seconds,
        );
        for s in &point.stages {
            if s.bytes > 0 || s.samples > 0 {
                println!(
                    "    {:<12} {:>10} B in {:>7} calls, {:>5} cpu samples",
                    s.stage.name(),
                    s.bytes,
                    s.calls,
                    s.samples
                );
            }
        }
        points.push(point);
    }

    println!("\ntop self-time frames:");
    for (frame, n) in ilt_prof::cpu::top_self(10) {
        println!("  {n:>6}  {frame}");
    }

    let path = opts.artifact("BENCH_memory.json");
    std::fs::write(&path, render_trajectory(&opts, &points)).expect("cannot write trajectory");
    println!("wrote {}", path.display());

    let flame = opts.artifact("memprofile_flame.txt");
    std::fs::write(&flame, ilt_prof::collapsed()).expect("cannot write flamegraph text");
    println!("wrote {}", flame.display());

    ilt_prof::stop_sampler();
    opts.finish_run("memprofile");
}

/// Renders the `ilt-bench-trajectory/v1` memory trajectory.
fn render_trajectory(opts: &HarnessOptions, points: &[GridPoint]) -> String {
    use tele::json;
    let mut out = String::from("{\"schema\":\"ilt-bench-trajectory/v1\",\"binary\":\"memprofile\"");
    out.push_str(",\"scale\":");
    json::push_str_literal(&mut out, &opts.scale);
    let _ = write!(out, ",\"workers\":{}", opts.workers);
    out.push_str(",\"points\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"grid\":");
        json::push_str_literal(&mut out, &p.grid);
        let _ = write!(
            out,
            ",\"tiles\":{},\"clip\":{},\"iterations\":{}",
            p.tiles, p.clip, p.iterations
        );
        out.push_str(",\"wall_seconds\":");
        json::push_f64(&mut out, p.wall_seconds);
        let _ = write!(
            out,
            ",\"peak_rss_bytes\":{},\"window_peak_rss_bytes\":{}",
            p.peak_rss_bytes, p.window_peak_rss_bytes
        );
        let _ = write!(
            out,
            ",\"allocated_bytes\":{},\"allocation_calls\":{},\"peak_live_bytes\":{}",
            p.allocated_bytes, p.allocation_calls, p.peak_live_bytes
        );
        out.push_str(",\"bytes_per_iteration\":");
        json::push_f64(&mut out, p.bytes_per_iteration);
        out.push_str(",\"stage_attribution_fraction\":");
        json::push_f64(&mut out, p.stage_attribution_fraction);
        out.push_str(",\"stages\":{");
        for (j, s) in p.stages.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::push_str_literal(&mut out, s.stage.name());
            let _ = write!(
                out,
                ":{{\"bytes\":{},\"calls\":{},\"samples\":{}}}",
                s.bytes, s.calls, s.samples
            );
        }
        out.push_str("}}");
    }
    out.push_str("]}\n");
    out
}

//! Deterministic **ECO drill**: measures the incremental (warm-start)
//! re-solve against a cold full re-solve of the same edited layout.
//!
//! Three phases on one seeded clip:
//!
//! 1. **base (cold + store)** — the multigrid-Schwarz flow on the base
//!    layout, with the final mask's tile crops stored in the shared
//!    `ilt-store` mask store;
//! 2. **edited (cold reference)** — the same flow from scratch on the
//!    edited layout, giving the reference quality and the cold wall time;
//! 3. **edited (warm ECO)** — the incremental re-solve: clean tiles reused
//!    from the store, only the dirty set (edited tile + overlap
//!    neighbours) re-solved warm-started from the base masks.
//!
//! The drill asserts the locality contract (exactly the dirty set
//! re-solves), a >= 2x end-to-end speedup over the cold re-solve, and warm
//! quality within the `report_diff` tolerances of the cold reference. It
//! writes `BENCH_eco.json` (schema `ilt-bench-trajectory/v1`) and attaches
//! an `incremental` section to `report.json` for baseline gating.
//!
//! ```text
//! ILT_SCALE=tiny cargo run --release -p ilt-bench --bin eco_smoke
//! ```

use std::fmt::Write as _;

use ilt_bench::HarnessOptions;
use ilt_core::experiment::Method;
use ilt_diag::DiffThresholds;
use ilt_layout::generate_clip;
use ilt_store::MaskStore;
use ilt_telemetry::json;
use ilt_tile::Partition;

/// One phase of the drill, as a trajectory point.
struct Phase {
    label: &'static str,
    wall_seconds: f64,
    tiles_solved: usize,
    l2: usize,
    pvband: usize,
    stitch: f64,
}

fn main() {
    let opts = HarnessOptions::from_env();
    assert!(
        MaskStore::enabled(),
        "the ECO drill needs the mask store; unset ILT_STORE=0"
    );
    let session = opts.session();
    let executor = opts.executor();
    let config = session.config();
    let partition = Partition::new(config.clip, config.clip, config.partition).expect("partition");
    let lines = partition.stitch_lines();

    // The base clip is suite case 1; the edit flips an 8x8 patch deep in
    // tile 0's exclusive region (both scales keep x, y < 32 exclusive to
    // tile 0), so the dirty set is tile 0 plus its overlap neighbours.
    let base = generate_clip(&config.generator, 1);
    let fill = 1 - base.get(12, 12);
    let mut edited = base.clone();
    for y in 10..18 {
        for x in 10..18 {
            edited.set(x, y, fill);
        }
    }

    println!(
        "ECO drill at scale {} ({}x{} tiles)",
        opts.scale,
        partition.tiles_x(),
        partition.tiles_y()
    );
    let tiles = partition.tiles().len();

    // Phase 1: cold base solve, tile crops stored.
    let base_flow = session
        .run_and_store(&base, &executor)
        .expect("base flow failed");
    let (base_q, base_s) = session
        .inspect_mask(&lines, &base, &base_flow.mask)
        .expect("base inspection failed");

    // Both timed phases finish in tens of milliseconds at bench scales,
    // where single-shot wall clocks carry several milliseconds of
    // scheduler noise — enough to swing the speedup ratio across its
    // gate. The drill therefore interleaves five rounds of the two timed
    // phases and keeps each phase's minimum wall: the flows are
    // deterministic (re-runs produce the identical mask, and dirty tiles
    // always re-solve regardless of store state), so the minimum is the
    // noise-robust estimate of the real cost, and interleaving means a
    // load burst inflates both sides rather than skewing the ratio.
    const TIMING_ROUNDS: usize = 5;

    // Phase 2: cold reference on the edited layout. `run_method` does not
    // touch the store, so the warm phase below can only hit the base keys.
    // Phase 3: warm incremental re-solve.
    let mut cold_flow = None;
    let mut outcome = None;
    for _ in 0..TIMING_ROUNDS {
        let cold_run = session
            .run_method(Method::Ours, &edited, &executor)
            .expect("cold reference flow failed");
        if cold_flow
            .as_ref()
            .is_none_or(|best: &ilt_core::flows::FlowResult| {
                cold_run.wall_seconds < best.wall_seconds
            })
        {
            cold_flow = Some(cold_run);
        }
        let warm_run = session
            .run_incremental(&base, &edited, &executor)
            .expect("incremental flow failed");
        if outcome
            .as_ref()
            .is_none_or(|best: &ilt_core::IncrementalOutcome| {
                warm_run.flow.wall_seconds < best.flow.wall_seconds
            })
        {
            outcome = Some(warm_run);
        }
    }
    let cold_flow = cold_flow.expect("at least one timing round");
    let outcome = outcome.expect("at least one timing round");
    let (cold_q, cold_s) = session
        .inspect_mask(&lines, &edited, &cold_flow.mask)
        .expect("cold inspection failed");
    let (warm_q, warm_s) = session
        .inspect_mask(&lines, &edited, &outcome.flow.mask)
        .expect("warm inspection failed");

    let phases = [
        Phase {
            label: "base_cold_store",
            wall_seconds: base_flow.wall_seconds,
            tiles_solved: tiles,
            l2: base_q.l2,
            pvband: base_q.pvband,
            stitch: base_s.total,
        },
        Phase {
            label: "edited_cold",
            wall_seconds: cold_flow.wall_seconds,
            tiles_solved: tiles,
            l2: cold_q.l2,
            pvband: cold_q.pvband,
            stitch: cold_s.total,
        },
        Phase {
            label: "edited_eco_warm",
            wall_seconds: outcome.flow.wall_seconds,
            tiles_solved: outcome.tiles_resolved,
            l2: warm_q.l2,
            pvband: warm_q.pvband,
            stitch: warm_s.total,
        },
    ];
    println!("\nphase             wall(s)  tiles    L2      PVB   stitch");
    for p in &phases {
        println!(
            "{:<16} {:>8.3} {:>6} {:>7} {:>7} {:>8.4}",
            p.label, p.wall_seconds, p.tiles_solved, p.l2, p.pvband, p.stitch
        );
    }

    let speedup = cold_flow.wall_seconds / outcome.flow.wall_seconds.max(1e-9);
    println!(
        "\nedit: {} changed pixels, dirty tiles {:?}",
        outcome.diff.changed_pixels, outcome.diff.dirty
    );
    println!(
        "reuse: {} of {tiles} tiles from the store ({} re-solved), hit ratio {:.3}",
        outcome.tiles_reused,
        outcome.tiles_resolved,
        outcome.hit_ratio()
    );
    println!("speedup: {speedup:.2}x warm over cold");

    // Locality contract: the edit touched exactly tile 0's neighbourhood.
    assert_eq!(
        outcome.diff.edited,
        vec![0],
        "the 8x8 patch must dirty exactly tile 0"
    );
    // The exact dirty set is tile 0 plus its overlap neighbours, derived
    // from the partition itself so the drill holds on any M x N grid
    // (clamped geometries included), not just the paper-ratio 3x3.
    let mut expected_dirty = partition.neighbors(0);
    expected_dirty.push(0);
    expected_dirty.sort_unstable();
    assert_eq!(
        outcome.diff.dirty, expected_dirty,
        "the dirty frontier must be exactly the edited tile plus its \
         partition neighbours"
    );
    assert_eq!(
        outcome.tiles_resolved,
        outcome.diff.dirty.len(),
        "exactly the dirty set must re-solve"
    );
    assert_eq!(outcome.tiles_reused + outcome.tiles_resolved, tiles);
    assert_eq!(
        outcome.store_misses, 0,
        "every lookup must hit after a stored base solve"
    );
    assert!(outcome.flow.degraded.is_empty(), "warm flow degraded tiles");

    // Quality contract: the warm mask stays within the report_diff
    // tolerances of the cold reference.
    let t = DiffThresholds::default();
    for (metric, cold, warm) in [
        ("l2", cold_q.l2 as f64, warm_q.l2 as f64),
        ("pvband", cold_q.pvband as f64, warm_q.pvband as f64),
        ("stitch", cold_s.total, warm_s.total),
    ] {
        let bound = cold * t.max_quality_ratio + t.quality_slack;
        assert!(
            warm <= bound,
            "warm {metric} {warm} exceeds cold {cold} * {} + {} = {bound}",
            t.max_quality_ratio,
            t.quality_slack
        );
    }

    // Speed contract: warm-starting only the dirty set at the halved fine
    // budget must beat the cold re-solve by at least 2x end to end. The
    // asymptotic locality claim is asserted exactly above (dirty set,
    // reuse count, store hits); this wall-clock floor is a smoke bound,
    // deliberately below the ~2.5-3x a quiet machine measures at bench
    // scales, where the warm path's fixed per-stage assembly overhead —
    // not tile solves — bounds the achievable ratio.
    assert!(
        speedup >= 2.0,
        "ECO speedup {speedup:.2}x is below the 2x acceptance floor \
         (cold {:.3}s, warm {:.3}s)",
        cold_flow.wall_seconds,
        outcome.flow.wall_seconds
    );

    let path = opts.artifact("BENCH_eco.json");
    std::fs::write(&path, render_trajectory(&opts, &phases, speedup)).expect("write trajectory");
    println!("wrote {}", path.display());

    ilt_bench::set_report_section("incremental", render_section(&outcome, speedup, &phases));
    opts.finish_run("eco_smoke");
}

/// Renders the `ilt-bench-trajectory/v1` drill trajectory: one point per
/// phase, so CI can track cold and warm wall times side by side.
fn render_trajectory(opts: &HarnessOptions, phases: &[Phase], speedup: f64) -> String {
    let mut out = String::from("{\"schema\":\"ilt-bench-trajectory/v1\",\"binary\":\"eco_smoke\"");
    out.push_str(",\"scale\":");
    json::push_str_literal(&mut out, &opts.scale);
    let _ = write!(out, ",\"workers\":{}", opts.workers);
    out.push_str(",\"speedup\":");
    json::push_f64(&mut out, speedup);
    out.push_str(",\"points\":[");
    for (i, p) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"phase\":");
        json::push_str_literal(&mut out, p.label);
        out.push_str(",\"wall_seconds\":");
        json::push_f64(&mut out, p.wall_seconds);
        let _ = write!(
            out,
            ",\"tiles_solved\":{},\"l2\":{},\"pvband\":{},\"stitch\":",
            p.tiles_solved, p.l2, p.pvband
        );
        json::push_f64(&mut out, p.stitch);
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Renders the optional `incremental` section of `report.json`: the reuse
/// accounting and cold/warm comparison the `report_diff` baseline gates.
fn render_section(
    outcome: &ilt_core::IncrementalOutcome,
    speedup: f64,
    phases: &[Phase],
) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"tiles_reused\":{},\"tiles_resolved\":{},\"changed_pixels\":{},\
         \"store_hits\":{},\"store_misses\":{},\"hit_ratio\":",
        outcome.tiles_reused,
        outcome.tiles_resolved,
        outcome.diff.changed_pixels,
        outcome.store_hits,
        outcome.store_misses
    );
    json::push_f64(&mut out, outcome.hit_ratio());
    out.push_str(",\"dirty_tiles\":[");
    for (i, t) in outcome.diff.dirty.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{t}");
    }
    out.push_str("],\"speedup\":");
    json::push_f64(&mut out, speedup);
    out.push_str(",\"phases\":{");
    for (i, p) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_str_literal(&mut out, p.label);
        out.push_str(":{\"wall_seconds\":");
        json::push_f64(&mut out, p.wall_seconds);
        let _ = write!(
            out,
            ",\"tiles_solved\":{},\"l2\":{},\"pvband\":{},\"stitch\":",
            p.tiles_solved, p.l2, p.pvband
        );
        json::push_f64(&mut out, p.stitch);
        out.push('}');
    }
    out.push_str("}}");
    out
}

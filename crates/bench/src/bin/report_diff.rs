//! Regression gate comparing two `ilt-report` run reports.
//!
//! ```text
//! cargo run --release -p ilt-bench --bin report_diff -- \
//!     results/baselines/smoke.json smoke/report.json
//! ```
//!
//! Compares a candidate report against a baseline (per-flow latency and the
//! per-case quality summaries of the `diagnostics` section) and exits
//! non-zero when the candidate regressed:
//!
//! * exit `0` — no regression;
//! * exit `1` — at least one regression (each printed on stderr);
//! * exit `2` — usage or parse error.
//!
//! Flags (all optional, after the two report paths):
//!
//! * `--max-latency-ratio F` — fail when a flow is more than `F`× slower
//!   than the baseline (default 2.0; a 5 ms floor absorbs timer noise on
//!   trivially fast flows);
//! * `--max-quality-ratio F` — fail when a quality metric exceeds
//!   `baseline * F + slack` (default 1.10);
//! * `--quality-slack F` — absolute slack added to every quality bound
//!   (default 0.5), so near-zero baselines don't fail on noise;
//! * `--max-rss-ratio F` — fail when the candidate's `memory.peak_rss_bytes`
//!   exceeds `baseline * F` (default 1.10); skipped when either report
//!   lacks the memory section;
//! * `--min-iteration-speedup F` — fail when the candidate's
//!   `microbench.iteration_speedup` is below `F` (absolute, not relative
//!   to the baseline; a candidate without the section fails). Off by
//!   default;
//! * `--ignore-latency` — skip the latency comparison entirely (useful
//!   across machines of different speed).

use std::process::ExitCode;

use ilt_diag::{compare_reports, DiffThresholds, Json};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(regressions) if regressions.is_empty() => {
            println!("report_diff: no regressions");
            ExitCode::SUCCESS
        }
        Ok(regressions) => {
            for r in &regressions {
                eprintln!("regression: {r}");
            }
            eprintln!("report_diff: {} regression(s)", regressions.len());
            ExitCode::from(1)
        }
        Err(message) => {
            eprintln!("report_diff: {message}");
            eprintln!(
                "usage: report_diff <baseline.json> <candidate.json> \
                 [--max-latency-ratio F] [--max-quality-ratio F] \
                 [--quality-slack F] [--max-rss-ratio F] \
                 [--min-iteration-speedup F] [--ignore-latency]"
            );
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<Vec<ilt_diag::Regression>, String> {
    let mut paths = Vec::new();
    let mut thresholds = DiffThresholds::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-latency-ratio" => thresholds.max_latency_ratio = ratio_arg(arg, it.next())?,
            "--max-quality-ratio" => thresholds.max_quality_ratio = ratio_arg(arg, it.next())?,
            "--quality-slack" => thresholds.quality_slack = ratio_arg(arg, it.next())?,
            "--max-rss-ratio" => thresholds.max_rss_ratio = ratio_arg(arg, it.next())?,
            "--min-iteration-speedup" => {
                thresholds.min_iteration_speedup = ratio_arg(arg, it.next())?
            }
            "--ignore-latency" => thresholds.check_latency = false,
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path => paths.push(path.to_string()),
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return Err(format!(
            "expected exactly 2 report paths, got {}",
            paths.len()
        ));
    };
    let baseline = load(baseline_path)?;
    let candidate = load(candidate_path)?;
    compare_reports(&baseline, &candidate, &thresholds)
}

fn ratio_arg(flag: &str, value: Option<&String>) -> Result<f64, String> {
    let raw = value.ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse::<f64>()
        .ok()
        .filter(|v| v.is_finite() && *v >= 0.0)
        .ok_or_else(|| format!("invalid {flag} value {raw:?}"))
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

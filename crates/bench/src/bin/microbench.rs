//! `microbench`: fast-path micro-benchmarks for the litho hot loop.
//!
//! Times the building blocks the solvers spend their iterations in — 2-D
//! FFT forward/inverse passes (dense and sparse-support), their real-input
//! half-spectrum counterparts (`rfft_*`), the Hopkins forward/adjoint
//! simulator passes (including the Hermitian path pinned explicitly), and
//! a full pixel-ILT iteration — at the grid sizes of the configured
//! experiment scale (`base_n` for the simulator benches, plus the full
//! `clip` edge for the large FFTs).
//!
//! The full-iteration bench runs twice: once through the historical
//! allocate-per-call API (`simulate`/`gradient`, serial, dense complex
//! transforms) and once through the workspace fast path
//! (`simulate_into`/`gradient_into` on the real-input path with the
//! `ILT_INNER_THREADS` budget), and prints the speedup between them; the
//! `microbench` report section carries that speedup (gated by
//! `report_diff --min-iteration-speedup` in CI) together with the
//! autotuned FFT plan parameters. A
//! final three-way A/B re-runs the fast-path iteration with a span per
//! iteration: recorder off, recorder on, and recorder + full `ilt-prof`
//! layer (CPU sampler plus allocation tracking). The summary carries
//! `obs_overhead_ratio` (recorder vs off; CI asserts <= 2%) and
//! `obs_profile_overhead_ratio` (everything on vs off; CI asserts <= 5%,
//! the bar for leaving profiling enabled in production).
//!
//! Each benchmark is wrapped in a named flow span, so the emitted
//! `report.json` (schema `ilt-report/v2`) carries one flow per benchmark
//! and can be gated against `results/baselines/microbench.json` with the
//! `report_diff` bin. Telemetry is force-enabled so the flows are recorded
//! even without `ILT_TRACE=1`. A compact single-point summary (schema
//! `ilt-bench-trajectory/v1`) is also written for the `BENCH_*` trajectory
//! files under `results/`.
//!
//! ```text
//! ILT_SCALE=tiny ILT_INNER_THREADS=4 cargo run --release -p ilt-bench --bin microbench
//! ```

use std::fmt::Write as _;

use ilt_bench::HarnessOptions;
use ilt_fft::{spectral, Complex, Fft2d, Rfft2d};
use ilt_grid::Grid;
use ilt_litho::SpectralPath;
use ilt_opt::{evaluate_loss, evaluate_loss_into, LossEval};
use ilt_par::InnerPool;
use ilt_telemetry as tele;

// The tracking allocator must be the global allocator for the
// recorder+profiler overhead arm to measure real allocation-counting cost
// (disabled, it adds one relaxed load per allocation).
#[global_allocator]
static GLOBAL: ilt_prof::TrackingAlloc = ilt_prof::TrackingAlloc::new();

/// Deterministic xorshift values in [-1, 1) so benchmark buffers are
/// reproducible and free of denormal-heavy patterns.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
}

/// One benchmark result: `iters` timed repetitions in `seconds` total.
struct BenchPoint {
    name: String,
    iters: usize,
    seconds: f64,
}

impl BenchPoint {
    fn us_per_iter(&self) -> f64 {
        self.seconds / self.iters as f64 * 1e6
    }
}

/// Runs `f` twice untimed (warm-up), then `iters` times inside a flow span
/// named `name`, and returns the timed total.
fn bench(points: &mut Vec<BenchPoint>, name: String, iters: usize, mut f: impl FnMut()) {
    f();
    f();
    let mut flow = tele::span(tele::names::FLOW);
    flow.add_field("name", name.as_str());
    for _ in 0..iters {
        f();
    }
    let seconds = flow.end();
    let point = BenchPoint {
        name,
        iters,
        seconds,
    };
    println!(
        "{:<28} {:>5} iters  {:>10.1} us/iter",
        point.name,
        point.iters,
        point.us_per_iter()
    );
    points.push(point);
}

/// The wrapped spectrum rows of a centered `p`-wide support on an `n` grid
/// (the exact support `LithoSimulator` hands to `inverse_support`).
fn support_bins(p: usize, n: usize) -> Vec<usize> {
    let half = p as i64 / 2;
    (0..p)
        .map(|i| spectral::wrap_index(i as i64 - half, n))
        .collect()
}

fn spectrum(rng: &mut Rng, n: usize, bins: &[usize]) -> Vec<Complex> {
    let mut data = vec![Complex::ZERO; n * n];
    for &r in bins {
        for &c in bins {
            data[r * n + c] = Complex::new(rng.next(), rng.next());
        }
    }
    data
}

fn main() {
    let opts = HarnessOptions::from_env();
    // Flows must be recorded for the report gate even without ILT_TRACE=1.
    tele::set_enabled(true);
    let tiny = opts.scale == "tiny";
    let base_n = opts.config.optics.base_n;
    let clip = opts.config.clip;
    println!(
        "microbench: scale={} base_n={} clip={} inner_threads={}",
        opts.scale, base_n, clip, opts.inner_threads
    );

    let mut rng = Rng(0x5eed_5eed_5eed_5eed);
    let mut points = Vec::new();

    // FFT stages at the tile grid size.
    let (fft_iters, sim_iters, iter_iters) = if tiny { (200, 30, 50) } else { (40, 8, 10) };
    let fft = Fft2d::new(base_n, base_n).unwrap();
    let mut buf: Vec<Complex> = (0..base_n * base_n)
        .map(|_| Complex::new(rng.next(), rng.next()))
        .collect();
    bench(
        &mut points,
        format!("fft_forward_{base_n}"),
        fft_iters,
        || fft.forward(&mut buf).unwrap(),
    );
    bench(
        &mut points,
        format!("fft_inverse_{base_n}"),
        fft_iters,
        || fft.inverse(&mut buf).unwrap(),
    );

    // Large-area FFT at the clip edge (the inspection-system size).
    let clip_fft = Fft2d::new(clip, clip).unwrap();
    let mut clip_buf: Vec<Complex> = (0..clip * clip)
        .map(|_| Complex::new(rng.next(), rng.next()))
        .collect();
    bench(
        &mut points,
        format!("fft_forward_{clip}"),
        fft_iters / 8,
        || clip_fft.forward(&mut clip_buf).unwrap(),
    );

    // Real-input transforms at the same sizes: the half-spectrum path the
    // simulator runs on by default. Serial pools, like the complex FFT
    // benches above, so the numbers compare transform work, not threading.
    let serial = InnerPool::serial();
    let rfft = Rfft2d::new(base_n).unwrap();
    let real_src: Vec<f64> = (0..base_n * base_n).map(|_| rng.next()).collect();
    let mut half = vec![Complex::ZERO; rfft.spectrum_len()];
    let mut rscratch = vec![Complex::ZERO; rfft.spectrum_len()];
    bench(
        &mut points,
        format!("rfft_forward_{base_n}"),
        fft_iters,
        || {
            rfft.forward(&real_src, &mut half, &mut rscratch, &serial)
                .unwrap()
        },
    );
    let clip_rfft = Rfft2d::new(clip).unwrap();
    let clip_src: Vec<f64> = (0..clip * clip).map(|_| rng.next()).collect();
    let mut clip_half = vec![Complex::ZERO; clip_rfft.spectrum_len()];
    let mut clip_rscratch = vec![Complex::ZERO; clip_rfft.spectrum_len()];
    bench(
        &mut points,
        format!("rfft_forward_{clip}"),
        fft_iters / 8,
        || {
            clip_rfft
                .forward(&clip_src, &mut clip_half, &mut clip_rscratch, &serial)
                .unwrap()
        },
    );
    // The inverse destroys its spectrum, so each iteration restores it.
    let pristine_half = half.clone();
    let mut inv_half = half.clone();
    let mut real_dst = vec![0.0f64; base_n * base_n];
    bench(
        &mut points,
        format!("rfft_inverse_{base_n}"),
        fft_iters,
        || {
            inv_half.copy_from_slice(&pristine_half);
            rfft.inverse(&mut inv_half, &mut real_dst, &mut rscratch, &serial)
                .unwrap();
        },
    );

    // Simulator passes at the tile grid size, through the workspace arena.
    let bank = opts.bank();
    let system = bank.system(base_n, 1).expect("system construction failed");
    let support = system.simulator().kernels().support();
    let mut ws = system.workspace();
    let mask = Grid::from_fn(base_n, base_n, |x, y| {
        0.3 + 0.2 * ((x as f64 * 0.3).sin() * (y as f64 * 0.21).cos())
    });
    let dldi = Grid::from_fn(base_n, base_n, |x, y| ((x as f64 - y as f64) * 0.01).tanh());
    let target = Grid::from_fn(base_n, base_n, |x, y| {
        f64::from(u8::from(
            x > base_n / 4 && x < 3 * base_n / 4 && y > base_n / 3,
        ))
    });

    // Sparse-support inverse on the simulator's actual P x P support.
    let bins = support_bins(support, base_n);
    let supported = spectrum(&mut rng, base_n, &bins);
    let mut sparse_buf = supported.clone();
    bench(
        &mut points,
        format!("fft_inverse_sparse_{base_n}"),
        fft_iters,
        || {
            sparse_buf.copy_from_slice(&supported);
            fft.inverse_support(&mut sparse_buf, &bins).unwrap();
        },
    );

    bench(&mut points, format!("simulate_{base_n}"), sim_iters, || {
        system.simulate_into(&mask, &mut ws).unwrap();
    });
    bench(&mut points, format!("gradient_{base_n}"), sim_iters, || {
        system.gradient_into(&mut ws, &dldi).unwrap();
    });

    // The Hermitian forward pass, pinned explicitly (so this point keeps
    // measuring the half-spectrum path even if the default ever changes).
    let mut hermitian_system = bank.system(base_n, 1).expect("system construction failed");
    hermitian_system.set_spectral_path(SpectralPath::RealHermitian);
    let mut hermitian_ws = hermitian_system.workspace();
    bench(
        &mut points,
        format!("hermitian_simulate_{base_n}"),
        sim_iters,
        || {
            hermitian_system
                .simulate_into(&mask, &mut hermitian_ws)
                .unwrap()
        },
    );

    // Full solver iteration, pre-fast-path shape: allocate-per-call
    // simulate/gradient on a serial pool with dense complex transforms
    // (what the solvers did before the workspace arena, inner-thread
    // budget, and real-input path existed).
    let mut alloc_system = bank.system(base_n, 1).expect("system construction failed");
    alloc_system.set_inner_pool(InnerPool::serial());
    alloc_system.set_spectral_path(SpectralPath::Complex);
    bench(
        &mut points,
        format!("ilt_iteration_alloc_{base_n}"),
        iter_iters,
        || {
            let state = alloc_system.simulate(&mask).unwrap();
            let eval = evaluate_loss(alloc_system.resist(), &state.intensity, &target);
            let _ = alloc_system.gradient(&state, &eval.dldi).unwrap();
        },
    );
    // Full solver iteration, fast path: workspace arena + inner pool +
    // reused loss buffers, exactly the shape of the solvers' inner loops.
    let mut loss_eval = LossEval {
        value: 0.0,
        dldi: Grid::new(base_n, base_n, 0.0),
        wafer: Grid::new(base_n, base_n, 0.0),
    };
    bench(
        &mut points,
        format!("ilt_iteration_fast_{base_n}"),
        iter_iters,
        || {
            system.simulate_into(&mask, &mut ws).unwrap();
            evaluate_loss_into(system.resist(), ws.intensity(), &target, &mut loss_eval);
            let _ = system.gradient_into(&mut ws, &loss_eval.dldi).unwrap();
        },
    );

    let alloc = points[points.len() - 2].seconds;
    let fast = points[points.len() - 1].seconds;
    let speedup = alloc / fast;
    println!(
        "\niteration speedup (alloc-per-call vs workspace fast path, \
         inner_threads={}): {speedup:.2}x",
        opts.inner_threads
    );

    // Observability overhead, three ways: the same fast-path iteration
    // with a span per iteration, run with (1) recorder off, (2) recorder
    // on, and (3) recorder on plus the full ilt-prof layer — CPU sampler
    // at the default rate and allocation tracking — exactly as ilt-serve
    // runs in production. The arms are interleaved round-robin (best-of-4
    // per arm) so clock drift and scheduler noise hit every arm equally
    // instead of biasing whichever runs last; CI gates recorder-only at
    // <= 2% and the combined stack at <= 5%.
    let mut obs_pass = || -> f64 {
        let started = std::time::Instant::now();
        for _ in 0..iter_iters {
            let _span = tele::span(tele::names::SOLVE);
            system.simulate_into(&mask, &mut ws).unwrap();
            evaluate_loss_into(system.resist(), ws.intensity(), &target, &mut loss_eval);
            let _ = system.gradient_into(&mut ws, &loss_eval.dldi).unwrap();
        }
        started.elapsed().as_secs_f64()
    };
    let mut best = [f64::INFINITY; 3];
    for round in 0..5 {
        for (arm, best) in best.iter_mut().enumerate() {
            tele::flight::set_recording(arm >= 1);
            if arm == 2 {
                ilt_prof::alloc::set_enabled(true);
                ilt_prof::start_sampler(ilt_prof::DEFAULT_HZ);
            }
            let seconds = obs_pass();
            if arm == 2 {
                ilt_prof::stop_sampler();
                ilt_prof::alloc::set_enabled(false);
            }
            // Round 0 warms every arm's code path; only later rounds count.
            if round > 0 {
                *best = best.min(seconds);
            }
        }
    }
    let [recorder_off, recorder_on, profiled] = best;
    tele::flight::set_recording(true);
    let obs_overhead = recorder_on / recorder_off;
    let obs_profile_overhead = profiled / recorder_off;
    println!(
        "flight-recorder overhead (span per iteration, on vs off): {:.4}x",
        obs_overhead
    );
    println!(
        "recorder+profiler overhead (sampler {} Hz + alloc tracking, on vs off): {:.4}x",
        ilt_prof::DEFAULT_HZ,
        obs_profile_overhead
    );

    let path = opts.artifact("microbench_summary.json");
    std::fs::write(
        &path,
        render_summary(&opts, &points, speedup, obs_overhead, obs_profile_overhead),
    )
    .expect("cannot write summary");
    println!("wrote {}", path.display());

    // The `microbench` report section carries the iteration timings and
    // in-run speedup (gated by `report_diff --min-iteration-speedup` in CI
    // against the baseline's recorded pre-fast-path reference cost) and
    // the transpose/row-batch parameters the plan cache autotuned for this
    // machine.
    let alloc_us = points[points.len() - 2].us_per_iter();
    let fast_us = points[points.len() - 1].us_per_iter();
    ilt_bench::set_report_section(
        "microbench",
        render_microbench_section(speedup, alloc_us, fast_us),
    );
    opts.finish_run("microbench");
}

/// Renders the `microbench` report section: the per-iteration timings of
/// the alloc and fast arms, the in-run speedup between them, plus every
/// (size, threads) -> (block, row_batch) choice the FFT plan cache
/// autotuned during the run.
fn render_microbench_section(speedup: f64, alloc_us: f64, fast_us: f64) -> String {
    use tele::json;
    let mut out = String::from("{\"iteration_speedup\":");
    json::push_f64(&mut out, speedup);
    out.push_str(",\"iteration_alloc_us\":");
    json::push_f64(&mut out, alloc_us);
    out.push_str(",\"iteration_fast_us\":");
    json::push_f64(&mut out, fast_us);
    out.push_str(",\"autotune\":[");
    for (i, (n, threads, params)) in ilt_fft::tuned_summary().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"n\":{n},\"threads\":{threads},\"block\":{},\"row_batch\":{}}}",
            params.block, params.row_batch
        );
    }
    out.push_str("]}");
    out
}

/// Renders the single-point `ilt-bench-trajectory/v1` summary.
fn render_summary(
    opts: &HarnessOptions,
    points: &[BenchPoint],
    speedup: f64,
    obs_overhead: f64,
    obs_profile_overhead: f64,
) -> String {
    use tele::json;
    let mut out = String::from("{\"schema\":\"ilt-bench-trajectory/v1\",\"binary\":\"microbench\"");
    out.push_str(",\"scale\":");
    json::push_str_literal(&mut out, &opts.scale);
    let _ = write!(out, ",\"inner_threads\":{}", opts.inner_threads);
    out.push_str(",\"iteration_speedup\":");
    json::push_f64(&mut out, speedup);
    out.push_str(",\"obs_overhead_ratio\":");
    json::push_f64(&mut out, obs_overhead);
    out.push_str(",\"obs_profile_overhead_ratio\":");
    json::push_f64(&mut out, obs_profile_overhead);
    out.push_str(",\"benches\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::push_str_literal(&mut out, &p.name);
        let _ = write!(out, ",\"iters\":{}", p.iters);
        out.push_str(",\"seconds\":");
        json::push_f64(&mut out, p.seconds);
        out.push_str(",\"us_per_iter\":");
        json::push_f64(&mut out, p.us_per_iter());
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

//! Extension study: manufacturability of the assembled masks.
//!
//! The paper motivates the stitch problem with MRC: "such discontinuities
//! can violate the manufacturability rule check". This harness measures it
//! directly — mask-rule violations (width/space/area) per flow, how many of
//! them sit within one overlap of a stitch line, and the per-gauge edge
//! placement error of the prints.
//!
//! ```text
//! cargo run --release -p ilt-bench --bin manufacturability
//! ```

use ilt_bench::HarnessOptions;
use ilt_core::flows::{divide_and_conquer, full_chip, multigrid_schwarz};
use ilt_layout::suite_of_size;
use ilt_litho::Corner;
use ilt_metrics::{check_mask, edge_placement_error, EpeConfig, MrcRules};
use ilt_opt::PixelIlt;
use ilt_tile::Partition;

fn main() {
    let opts = HarnessOptions::from_env();
    let bank = opts.bank();
    let executor = opts.executor();
    let clip = suite_of_size(&opts.config.generator, 1).remove(0);
    let inspection = bank
        .system(opts.config.clip, opts.config.inspection_scale())
        .expect("inspection");
    let partition =
        Partition::new(clip.size(), clip.size(), opts.config.partition).expect("partition");
    let lines = partition.stitch_lines();
    let solver = PixelIlt::new();
    let rules = MrcRules::m1_default();
    let epe_cfg = EpeConfig::m1_default();
    let near = opts.config.partition.overlap / 2;

    println!(
        "Manufacturability on {} (MRC rules: width {}, space {}, area {}):",
        clip.name, rules.min_width, rules.min_space, rules.min_area
    );
    println!(
        "{:<22} {:>8} {:>14} {:>10} {:>9} {:>8}",
        "method", "MRC", "MRC-near-line", "EPE-mean", "EPE-max", "EPE-viol"
    );

    let report = |name: &str, mask: &ilt_grid::RealGrid| {
        let bits = mask.threshold(0.5);
        let mrc = check_mask(&bits, &rules);
        let near_line = mrc.near_lines(&lines, near).len();
        let printed = inspection
            .print(&bits.to_real(), Corner::Nominal)
            .expect("print");
        let epe = edge_placement_error(&clip.target, &printed, &epe_cfg);
        println!(
            "{name:<22} {:>8} {:>14} {:>10.3} {:>9} {:>8}",
            mrc.count(),
            near_line,
            epe.mean_abs,
            epe.max_abs,
            epe.violations
        );
    };

    let dnc =
        divide_and_conquer(&opts.config, &bank, &clip.target, &solver, &executor).expect("dnc");
    report("divide-and-conquer", &dnc.mask);
    let ours =
        multigrid_schwarz(&opts.config, &bank, &clip.target, &solver, &executor).expect("ours");
    report("multigrid-Schwarz", &ours.mask);
    let full = full_chip(&opts.config, &bank, &clip.target, &solver).expect("full");
    report("full-chip reference", &full.mask);

    opts.finish_run("manufacturability");
}

//! # multigrid-schwarz-ilt
//!
//! A from-scratch Rust reproduction of *Efficient ILT via
//! Multigrid-Schwartz Method* (DAC 2024): full-chip inverse lithography
//! with tile partitioning, a coarse-grid multigrid initialisation, staged
//! additive-Schwarz fine optimisation with weighted-smoothing tile
//! assembly, and a multi-colour multiplicative-Schwarz refinement pass.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`fft`] — complex FFTs and spectral utilities;
//! * [`linalg`] — the Hermitian eigensolver behind SOCS kernels;
//! * [`grid`] — rasters, rectangles, filtering, morphology;
//! * [`layout`] — synthetic M1 clips and design rules;
//! * [`litho`] — Hopkins partially-coherent simulation and process corners;
//! * [`opt`] — the pixel (multi-level) and level-set tile solvers;
//! * [`tile`] — partitioning, Schwarz assembly, colouring, execution;
//! * [`metrics`] — L2, PVBand, and the Stitch Loss;
//! * [`core`] — the multigrid-Schwarz flow, every baseline flow, the
//!   Table 1 engine, and the parallel-speedup model.
//!
//! # Examples
//!
//! ```
//! use multigrid_schwarz_ilt::core::ExperimentConfig;
//!
//! let config = ExperimentConfig::paper_default();
//! // The paper's geometry ratios hold: a clip is 2 tiles wide and the
//! // overlap is half a tile.
//! assert_eq!(config.clip, 2 * config.partition.tile);
//! assert_eq!(config.partition.overlap, config.partition.tile / 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ilt_core as core;
pub use ilt_fft as fft;
pub use ilt_grid as grid;
pub use ilt_layout as layout;
pub use ilt_linalg as linalg;
pub use ilt_litho as litho;
pub use ilt_metrics as metrics;
pub use ilt_opt as opt;
pub use ilt_tile as tile;
